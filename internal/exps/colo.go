package exps

import (
	"fmt"
	"strings"

	"repro/internal/colocate"
	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/ktrace"
	"repro/internal/timebase"
	"repro/internal/victim/loopvictim"
)

// ColoConfig tunes the colocation experiment.
type ColoConfig struct {
	// Trials repeats the whole placement with different seeds.
	Trials int
	Seed   uint64
}

// ColoResult summarizes §4.4's technique.
type ColoResult struct {
	Config ColoConfig
	// Landed counts trials where the victim was placed on the reserved
	// idle core.
	Landed int
	// Stayed counts trials where the victim never migrated away during
	// the attack.
	Stayed int
	// PreemptionsPerTrial is the attack yield per trial on the colocated
	// core.
	PreemptionsPerTrial []int64
	Trials              int
}

// RunColo reproduces the §4.4 colocation technique on the full 16-core
// machine: 15 pinned dummies, an unpinned victim that lands on the idle
// core, the attacker pinned there afterwards, and the load balancer left
// running to show the victim stays put.
func RunColo(cfg ColoConfig) *ColoResult {
	if cfg.Trials <= 0 {
		cfg.Trials = 10
	}
	// Every trial's machine shares one configuration: fork them all from
	// one pooled template instead of booting 16 cores per trial.
	defer scopeTrialPool()()
	res := &ColoResult{Config: cfg, Trials: cfg.Trials}
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.Seed + uint64(trial)*7919
		m := NewMachine(CFS, seed)
		m.StartBalancer()
		rec := ktrace.NewRecorder()
		m.SetTracer(rec)

		target := trial % Cores // reserve a different core each trial
		plan := colocate.Prepare(m, target)
		m.RunFor(5 * timebase.Millisecond)

		// Invoke the (unpinned!) victim: placement picks the idle core.
		victim := m.Spawn("victim", func(e *kern.Env) {
			e.RunLoopForever(loopvictim.DefaultBody())
		})
		if plan.VictimLandedOnTarget(victim) {
			res.Landed++
		}
		// Pin the attacker to the target core and attack.
		a := core.NewAttacker(core.Config{
			Epsilon:        2 * timebase.Microsecond,
			Hibernate:      60 * timebase.Millisecond,
			StopAfterBurst: true,
			Measure: func(e *kern.Env, s core.Sample) bool {
				e.Burn(12 * timebase.Microsecond)
				return true
			},
		})
		m.Spawn("attacker", a.Run, kern.WithPin(plan.TargetCore))
		m.RunFor(200 * timebase.Millisecond)

		if plan.Stayed(rec.CoreLog[victim.ID()]) {
			res.Stayed++
		}
		res.PreemptionsPerTrial = append(res.PreemptionsPerTrial, a.Stats().Preemptions)
		m.Shutdown()
	}
	return res
}

// String renders the outcome.
func (r *ColoResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.4 — core colocation via load balancing (%d cores, %d trials)\n", Cores, r.Trials)
	fmt.Fprintf(&b, "  victim landed on reserved idle core: %d/%d\n", r.Landed, r.Trials)
	fmt.Fprintf(&b, "  victim never migrated during attack: %d/%d\n", r.Stayed, r.Trials)
	var minP int64 = 1 << 62
	for _, p := range r.PreemptionsPerTrial {
		if p < minP {
			minP = p
		}
	}
	fmt.Fprintf(&b, "  attack preemptions per trial (min): %d\n", minP)
	return b.String()
}
