package exps

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/timebase"
	"repro/internal/victim/aes"
)

// Fig51Config tunes the AES first-round attack.
type Fig51Config struct {
	// Keys is the number of random keys attacked (the paper uses 100).
	Keys int
	// TracesPerKey is the number of victim invocations per key (5).
	TracesPerKey int
	// Sched selects the scheduler (the paper reports both).
	Sched Sched
	// Polluters spawns LLC-noise threads on other cores (§4.3's channel
	// noise; 0 for the paper's quiescent headline runs).
	Polluters int
	// AmbientNoise is the kernel-level ambient-eviction rate (expected
	// LLC evictions per attacker wake); see kern.Params.
	AmbientNoise float64
	Seed         uint64
}

// Fig51Result is the AES attack outcome plus one heatmap trace.
type Fig51Result struct {
	Config Fig51Config
	// NibbleAccuracy is the fraction of key-byte upper nibbles recovered
	// correctly (paper: 98.9% on CFS, 98.1% on EEVDF).
	NibbleAccuracy float64
	// PerTraceSamples is the mean number of preemption samples per trace.
	PerTraceSamples float64
	// Heatmap is the T0 Flush+Reload matrix of the first trace of the
	// first key: Heatmap[line][sample] (Figure 5.1).
	Heatmap [][]bool
	// HeatmapFirstFour are the first four distinct T0 lines observed in
	// that trace (the red circles of Figure 5.1).
	HeatmapFirstFour []int
	// HeatmapTruth are the true first-round T0 upper nibbles of that
	// trace.
	HeatmapTruth []int
}

// aesTrace is one collected Flush+Reload trace: per sample, per table, the
// 16-line hit bitmap.
type aesTrace struct {
	plaintext []byte
	samples   [][4][16]bool
}

// RunFig51 reproduces §5.1: the T-table AES first-round attack with
// Flush+Reload, 5 traces per key, combining the traces with a
// collision-robust per-byte score (the prior work the paper matches [7]
// ships similarly careful key-retrieval algorithms).
func RunFig51(cfg Fig51Config) *Fig51Result {
	if cfg.Keys <= 0 {
		cfg.Keys = 100
	}
	if cfg.TracesPerKey <= 0 {
		cfg.TracesPerKey = 5
	}
	res := &Fig51Result{Config: cfg}
	r := rng.New(cfg.Seed ^ 0xae5)

	correct, total := 0, 0
	var sampleCount int64
	var traceCount int64
	for k := 0; k < cfg.Keys; k++ {
		key := make([]byte, 16)
		r.Bytes(key)
		ek, err := aes.ExpandKey(key)
		if err != nil {
			panic(err)
		}
		// Per key byte, per candidate upper nibble: accumulated evidence.
		// A candidate scores high when its implied line ℓ = v ⊕ p_hi is
		// the line observed at the byte's first-round position, scores a
		// little when ℓ merely appears among the table's early lines
		// (position shifted by a line collision among the four first-
		// round accesses), and is penalized when ℓ never shows early.
		var score [16][16]int
		for t := 0; t < cfg.TracesPerKey; t++ {
			pt := make([]byte, 16)
			r.Bytes(pt)
			tr := collectAESTrace(cfg, ek, pt, cfg.Seed+uint64(k*31+t))
			sampleCount += int64(len(tr.samples))
			traceCount++
			if res.Heatmap == nil {
				res.Heatmap = heatmapOf(tr, 0)
				res.HeatmapFirstFour = firstDistinctLines(tr, 0, 4)
				x := aes.FirstRoundState(key, pt)
				for pos := 0; pos < 4; pos++ {
					b := aes.ByteAtTablePosition(0, pos)
					res.HeatmapTruth = append(res.HeatmapTruth, int(x[b]>>4))
				}
			}
			for table := 0; table < 4; table++ {
				lines := firstDistinctLines(tr, table, 4)
				inEarly := map[int]bool{}
				for _, l := range lines {
					inEarly[l] = true
				}
				for pos := 0; pos < 4; pos++ {
					b := aes.ByteAtTablePosition(table, pos)
					ph := int(pt[b] >> 4)
					for v := 0; v < 16; v++ {
						l := v ^ ph
						switch {
						case pos < len(lines) && lines[pos] == l:
							score[b][v] += 3
						case inEarly[l]:
							score[b][v]++
						default:
							score[b][v] -= 2
						}
					}
				}
			}
		}
		for b := 0; b < 16; b++ {
			best := 0
			for v := 1; v < 16; v++ {
				if score[b][v] > score[b][best] {
					best = v
				}
			}
			if best == int(key[b]>>4) {
				correct++
			}
			total++
		}
	}
	res.NibbleAccuracy = float64(correct) / float64(total)
	res.PerTraceSamples = float64(sampleCount) / float64(traceCount)
	return res
}

// collectAESTrace runs one victim invocation under attack and returns the
// Flush+Reload trace.
func collectAESTrace(cfg Fig51Config, key *aes.Key, pt []byte, seed uint64) *aesTrace {
	m := NewMachine(cfg.Sched, seed, WithKernParams(func(kp *kern.Params) {
		kp.NoiseEvictionsPerWake = cfg.AmbientNoise
	}))
	defer m.Shutdown()

	if cfg.Polluters > 0 {
		noise.SpawnPolluters(m, noise.DefaultLLCNoise, cfg.Polluters, 0)
	}
	prog, _ := aes.BuildProgram(key, pt, aes.DefaultLayout)
	victim := SpawnInvokedVictim(m, "aes-victim", prog, 0)

	// Monitor all 64 T-table lines (16 per table).
	var lines [4][]uint64
	for table := 0; table < 4; table++ {
		for ln := 0; ln < aes.LinesPerTable; ln++ {
			lines[table] = append(lines[table], aes.DefaultLayout.LineAddr(table, ln))
		}
	}
	tr := &aesTrace{plaintext: pt}
	var monitors [4]*attack.FlushReload
	a := core.NewAttacker(core.Config{
		Epsilon:   1700 * timebase.Nanosecond,
		Hibernate: 70 * timebase.Millisecond,
		Measure: func(e *kern.Env, s core.Sample) bool {
			if monitors[0] == nil {
				for t := 0; t < 4; t++ {
					monitors[t] = attack.NewFlushReload(e, lines[t])
				}
				// Pre-condition the channel before the victim starts,
				// then invoke it (the attacker chooses when, §3).
				for t := 0; t < 4; t++ {
					monitors[t].Flush(e)
				}
				victim.Invoke()
				return true
			}
			var sm [4][16]bool
			hitAny := false
			for t := 0; t < 4; t++ {
				hits := monitors[t].Reload(e)
				for i, h := range hits {
					sm[t][i] = h
					hitAny = hitAny || h
				}
				monitors[t].Flush(e)
			}
			// Zero-step oracle (§4.2): samples with no signal are
			// dropped without spending a trace slot.
			if hitAny {
				tr.samples = append(tr.samples, sm)
			}
			return !victim.Done()
		},
	})
	m.Spawn("attacker", a.Run, kern.WithPin(0))
	m.Run(m.Now().Add(5*timebase.Second), func() bool { return victim.Done() })
	return tr
}

// firstDistinctLines returns the first n distinct lines of a table in
// sample order (ties within a sample resolved by line index).
func firstDistinctLines(tr *aesTrace, table, n int) []int {
	seen := make([]bool, 16)
	var out []int
	for _, s := range tr.samples {
		for ln := 0; ln < 16; ln++ {
			if s[table][ln] && !seen[ln] {
				seen[ln] = true
				out = append(out, ln)
				if len(out) == n {
					return out
				}
			}
		}
	}
	return out
}

// heatmapOf converts a trace into the Figure 5.1 matrix for one table.
func heatmapOf(tr *aesTrace, table int) [][]bool {
	out := make([][]bool, 16)
	for ln := range out {
		out[ln] = make([]bool, len(tr.samples))
		for i, s := range tr.samples {
			out[ln][i] = s[table][ln]
		}
	}
	return out
}

// String renders the headline and the heatmap.
func (r *Fig51Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.1/fig5.1 — AES T-table first-round attack (%s, %d keys × %d traces)\n",
		r.Config.Sched, r.Config.Keys, r.Config.TracesPerKey)
	paper := "98.9%"
	if r.Config.Sched == EEVDF {
		paper = "98.1%"
	}
	fmt.Fprintf(&b, "  upper-nibble recovery accuracy: %.1f%% (paper: %s)\n", 100*r.NibbleAccuracy, paper)
	fmt.Fprintf(&b, "  mean samples per trace: %.0f\n", r.PerTraceSamples)
	if len(r.Heatmap) > 0 {
		n := len(r.Heatmap[0])
		if n > 100 {
			n = 100
		}
		trimmed := make([][]bool, 16)
		for i := range trimmed {
			trimmed[i] = r.Heatmap[i][:n]
		}
		fmt.Fprintf(&b, "  T0 heatmap (first %d samples; first-round lines %v, truth %v):\n",
			n, r.HeatmapFirstFour, r.HeatmapTruth)
		b.WriteString(report.Heatmap(trimmed, func(i int) string { return fmt.Sprintf("line %2d", i) }))
	}
	return b.String()
}
