package exps

import (
	"fmt"
	"strings"
)

// ExtNoiseConfig tunes the channel-noise extension experiment.
type ExtNoiseConfig struct {
	// Keys per cell.
	Keys int
	// Noise is the ambient LLC-eviction rate per attacker wake.
	Noise float64
	Seed  uint64
}

// ExtNoiseResult quantifies §4.3's channel-noise discussion on the AES
// attack: random LLC traffic from other cores flips Flush+Reload readings;
// combining multiple victim runs (the paper's first amelioration strategy)
// restores accuracy.
type ExtNoiseResult struct {
	Config ExtNoiseConfig
	// QuietOneTrace / QuietFiveTraces are accuracies on the quiescent
	// machine with 1 and 5 victim runs per key.
	QuietOneTrace, QuietFiveTraces float64
	// NoisyOneTrace / NoisyFiveTraces repeat under LLC noise.
	NoisyOneTrace, NoisyFiveTraces float64
}

// RunExtNoise measures AES upper-nibble accuracy across
// {quiet, noisy} × {1 trace, 5 traces}.
func RunExtNoise(cfg ExtNoiseConfig) *ExtNoiseResult {
	if cfg.Keys <= 0 {
		cfg.Keys = 6
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 4
	}
	run := func(traces int, noiseRate float64, seedOff uint64) float64 {
		r := RunFig51(Fig51Config{
			Keys:         cfg.Keys,
			TracesPerKey: traces,
			Sched:        CFS,
			AmbientNoise: noiseRate,
			Seed:         cfg.Seed + seedOff,
		})
		return r.NibbleAccuracy
	}
	return &ExtNoiseResult{
		Config:          cfg,
		QuietOneTrace:   run(1, 0, 1),
		QuietFiveTraces: run(5, 0, 2),
		NoisyOneTrace:   run(1, cfg.Noise, 1),
		NoisyFiveTraces: run(5, cfg.Noise, 2),
	}
}

// VotingRecovers reports the paper's claim: under noise, multi-run voting
// recovers most of the lost accuracy.
func (r *ExtNoiseResult) VotingRecovers() bool {
	return r.NoisyFiveTraces > r.NoisyOneTrace && r.NoisyFiveTraces >= 0.9
}

// String renders the 2×2 table.
func (r *ExtNoiseResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ext.noise — AES accuracy under LLC channel noise (%d keys, %.0f evictions/wake)\n",
		r.Config.Keys, r.Config.Noise)
	fmt.Fprintf(&b, "  %-22s %10s %10s\n", "", "1 trace", "5 traces")
	fmt.Fprintf(&b, "  %-22s %9.1f%% %9.1f%%\n", "quiescent machine", 100*r.QuietOneTrace, 100*r.QuietFiveTraces)
	fmt.Fprintf(&b, "  %-22s %9.1f%% %9.1f%%\n", "with LLC noise", 100*r.NoisyOneTrace, 100*r.NoisyFiveTraces)
	fmt.Fprintf(&b, "  multi-run voting recovers accuracy under noise (§4.3 strategy 1): %v\n", r.VotingRecovers())
	return b.String()
}
