package exps

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/ktrace"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/victim/loopvictim"
)

// Fig43Variant selects which panel of Figure 4.3 (or Figure 4.7) to run.
type Fig43Variant uint8

// Panels.
const (
	// Fig43a: wake-up Method 1 (nanosleep).
	Fig43a Fig43Variant = iota
	// Fig43b: Method 1 + iTLB eviction performance degradation.
	Fig43b
	// Fig43c: wake-up Method 2 (POSIX timer).
	Fig43c
	// Fig47: the Figure 4.3b experiment on the EEVDF scheduler.
	Fig47
)

// String names the panel.
func (v Fig43Variant) String() string {
	switch v {
	case Fig43a:
		return "fig4.3a nanosleep"
	case Fig43b:
		return "fig4.3b nanosleep+evict-iTLB"
	case Fig43c:
		return "fig4.3c timer"
	default:
		return "fig4.7 EEVDF nanosleep+evict-iTLB"
	}
}

// Fig43Config tunes a temporal-resolution run.
type Fig43Config struct {
	Variant Fig43Variant
	// Epsilons are the ε values (one histogram line each). Nil selects
	// per-variant defaults.
	Epsilons []timebase.Duration
	// Samples is the number of preemptions per histogram (the paper uses
	// 80 000; the default here is 20 000 to keep regeneration quick —
	// raise it for the paper-scale run).
	Samples int
	// Seed drives jitter.
	Seed uint64
}

// DefaultEpsilons returns the ε sweep for a variant. Method 1's victim
// window is ε plus interrupt latency minus the context-switch cost; Method
// 2's interval must additionally cover the attacker's measurement.
func DefaultEpsilons(v Fig43Variant) []timebase.Duration {
	us := func(x float64) timebase.Duration { return timebase.Duration(x * 1000) }
	switch v {
	case Fig43c:
		// The interval additionally covers the attacker's 5µs measurement,
		// the signal-delivery and both context switches (~8.3µs total).
		return []timebase.Duration{us(8.3), us(8.5), us(8.9), us(9.4)}
	case Fig43b, Fig47:
		// With the victim's first instruction stretched by a page walk,
		// larger ε still single-steps.
		return []timebase.Duration{us(1.4), us(1.7), us(2.0), us(2.4)}
	default:
		return []timebase.Duration{us(1.2), us(1.4), us(1.6), us(1.9)}
	}
}

// Fig43Result holds one histogram per ε.
type Fig43Result struct {
	Variant  Fig43Variant
	Epsilons []timebase.Duration
	Hists    []*stats.Hist
}

// RunFig43 reproduces one panel of Figure 4.3 (or Figure 4.7): the
// distribution of victim instructions retired per preemption, per ε.
func RunFig43(cfg Fig43Config) *Fig43Result {
	if cfg.Samples <= 0 {
		cfg.Samples = 20000
	}
	if len(cfg.Epsilons) == 0 {
		cfg.Epsilons = DefaultEpsilons(cfg.Variant)
	}
	res := &Fig43Result{Variant: cfg.Variant, Epsilons: cfg.Epsilons}
	for i, eps := range cfg.Epsilons {
		res.Hists = append(res.Hists, runFig43One(cfg, eps, cfg.Seed+uint64(i)))
	}
	return res
}

// runFig43One collects one histogram.
func runFig43One(cfg Fig43Config, eps timebase.Duration, seed uint64) *stats.Hist {
	kind := CFS
	if cfg.Variant == Fig47 {
		kind = EEVDF
	}
	m := NewMachine(kind, seed)
	defer m.Shutdown()

	victimOpts := []kern.SpawnOption{kern.WithPin(0)}
	if cfg.Variant == Fig43b || cfg.Variant == Fig47 {
		victimOpts = append(victimOpts, kern.WithITLB())
	}
	victim := m.Spawn("victim", func(e *kern.Env) {
		e.RunLoopForever(loopvictim.DefaultBody())
	}, victimOpts...)

	rec := ktrace.NewRecorder()
	m.SetTracer(rec)

	method := core.MethodNanosleep
	if cfg.Variant == Fig43c {
		method = core.MethodTimer
	}
	acfg := core.Config{
		Method:         method,
		Epsilon:        eps,
		Hibernate:      80 * timebase.Millisecond,
		MaxPreemptions: cfg.Samples,
		Measure: func(e *kern.Env, s core.Sample) bool {
			e.Burn(5 * timebase.Microsecond) // the side-channel measurement stand-in
			return true
		},
	}
	var degrade func(*kern.Env)
	if cfg.Variant == Fig43b || cfg.Variant == Fig47 {
		var te *attack.TLBEvictor
		degrade = func(e *kern.Env) {
			if te == nil {
				te = attack.NewTLBEvictor(e, loopvictim.DefaultBase)
			}
			te.Evict(e)
		}
		acfg.Degrade = degrade
	}
	a := core.NewAttacker(acfg)
	m.Spawn("attacker", a.Run, kern.WithPin(0))
	m.Run(m.Now().Add(300*timebase.Second), func() bool {
		return a.Stats().Preemptions >= int64(cfg.Samples)
	})

	h := stats.NewHist()
	for _, s := range rec.Stints {
		if s.Thread != victim || s.Reason != kern.OutPreemptedWakeup {
			continue
		}
		// Exclude the burst-leading stint (the victim ran freely through
		// the attacker's whole hibernation); the paper's measurement
		// window likewise starts "from when the attacker begins
		// launching interrupts".
		if s.End.Sub(s.Start) > 50*timebase.Microsecond {
			continue
		}
		h.Add(int(s.Retired))
	}
	return h
}

// ZeroFrac returns the zero-step fraction for line i.
func (r *Fig43Result) ZeroFrac(i int) float64 { return r.Hists[i].Frac(0) }

// SingleFrac returns the single-step fraction for line i.
func (r *Fig43Result) SingleFrac(i int) float64 { return r.Hists[i].Frac(1) }

// SmallFrac returns the ≤10-instruction fraction for line i.
func (r *Fig43Result) SmallFrac(i int) float64 { return r.Hists[i].FracAtMost(10) }

// String renders the panel as the paper's histogram lines.
func (r *Fig43Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — victim instructions retired per preemption (n=%d per line)\n",
		r.Variant, r.Hists[0].Total())
	labels := make([]string, len(r.Epsilons))
	for i, e := range r.Epsilons {
		labels[i] = "ε=" + e.String()
	}
	b.WriteString(report.MultiHist(labels, r.Hists, 30))
	return b.String()
}
