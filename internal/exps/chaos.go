package exps

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kern"
	"repro/internal/timebase"
	"repro/internal/victim/loopvictim"
)

// ChaosConfig tunes the chaos experiment.
type ChaosConfig struct {
	// Rates is the fault-rate sweep; nil selects the default
	// {0, 0.02, 0.05, 0.1, 0.2}.
	Rates []float64
	// Target is the number of preemption samples the attacker tries to
	// collect per rate.
	Target int
	// Budget is the simulated-time watchdog allowance per rate.
	Budget timebase.Duration
	// Seed drives jitter and injection.
	Seed uint64
}

// ChaosRow is one fault rate's outcome.
type ChaosRow struct {
	// Rate is the per-opportunity injection probability.
	Rate float64
	// Collected is how many preemption samples the attacker got (of
	// Target).
	Collected int
	// SuccessRate is Collected over Target.
	SuccessRate float64
	// Confidence is the attacker's final preemption confidence.
	Confidence float64
	// Preemptions, FailedWakes and Attempts come from the robust attacker's
	// retry loop.
	Preemptions int64
	FailedWakes int64
	Attempts    int
	// Degraded marks a run whose retry budget ran out.
	Degraded bool
	// TimedOut marks a run stopped by the simulated-time watchdog.
	TimedOut bool
	// Faults is how many faults were actually injected.
	Faults int64
}

// ChaosResult is the attack-robustness sweep: success rate as injected
// fault rate rises. Not a paper artifact — it is the reproduction's own
// resilience harness, demonstrating that the Controlled Preemption loop
// (with recalibration and retry) degrades gracefully rather than
// collapsing when timers drop, wake-ups lie, and the scheduler misbehaves.
type ChaosResult struct {
	Target int
	Rows   []ChaosRow
}

// RunChaos measures attack success against escalating fault injection: for
// each rate, a fresh machine with a loop victim and a robust attacker on
// core 0, a sample target, and a watchdog.
func RunChaos(cfg ChaosConfig) *ChaosResult {
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{0, 0.02, 0.05, 0.1, 0.2}
	}
	if cfg.Target <= 0 {
		cfg.Target = 2000
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 20 * timebase.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	res := &ChaosResult{Target: cfg.Target}
	for _, rate := range cfg.Rates {
		res.Rows = append(res.Rows, runChaosRate(cfg, rate))
	}
	return res
}

// runChaosRate runs one row of the sweep.
func runChaosRate(cfg ChaosConfig, rate float64) ChaosRow {
	m := NewMachine(CFS, cfg.Seed, WithKernParams(func(kp *kern.Params) {
		kp.Faults = fault.Config{Rate: rate}
	}))
	defer m.Shutdown()
	m.Spawn("victim", func(e *kern.Env) {
		e.RunLoopForever(loopvictim.DefaultBody())
	}, kern.WithPin(0))

	collected := 0
	att := core.NewRobustAttacker(core.Config{
		Method:    core.MethodNanosleep,
		Epsilon:   2 * timebase.Microsecond,
		Hibernate: 60 * timebase.Millisecond,
		Measure: func(e *kern.Env, s core.Sample) bool {
			collected++
			return collected < cfg.Target
		},
	}, core.DefaultRetryPolicy())
	finished := false
	m.Spawn("attacker", func(e *kern.Env) {
		att.Run(e)
		finished = true
	}, kern.WithPin(0))

	wd := NewWatchdog(cfg.Budget)
	wd.Run(m, func() bool { return finished })

	rep := att.Report()
	row := ChaosRow{
		Rate:        rate,
		Collected:   collected,
		SuccessRate: float64(collected) / float64(cfg.Target),
		Confidence:  rep.Confidence,
		Preemptions: rep.Preemptions,
		FailedWakes: rep.FailedWakes,
		Attempts:    rep.Attempts,
		Degraded:    rep.Degraded,
		TimedOut:    wd.TimedOut,
	}
	if in := m.FaultInjector(); in != nil {
		row.Faults = in.Total()
	}
	return row
}

// String renders the sweep.
func (r *ChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos — attack success rate vs injected fault rate (target %d samples)\n", r.Target)
	fmt.Fprintf(&b, "  %-6s %-9s %-8s %-11s %-7s %-8s %-8s %s\n",
		"rate", "success", "conf", "preempt", "failed", "attempts", "faults", "flags")
	for _, row := range r.Rows {
		flags := "-"
		var fl []string
		if row.Degraded {
			fl = append(fl, "degraded")
		}
		if row.TimedOut {
			fl = append(fl, "timeout")
		}
		if len(fl) > 0 {
			flags = strings.Join(fl, ",")
		}
		fmt.Fprintf(&b, "  %-6.2f %-9s %-8.2f %-11d %-7d %-8d %-8d %s\n",
			row.Rate, fmtPct(row.SuccessRate), row.Confidence,
			row.Preemptions, row.FailedWakes, row.Attempts, row.Faults, flags)
	}
	return b.String()
}
