package exps

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/timebase"
)

// Sec45Config tunes the EEVDF budget measurement.
type Sec45Config struct {
	// Trials is the number of repeated experiments (the paper uses 165).
	Trials int
	Seed   uint64
}

// Sec45Result holds the EEVDF repeated-preemption distribution.
type Sec45Result struct {
	Config  Sec45Config
	Lengths []int64
	Summary stats.Summary
}

// RunSec45 reproduces the §4.5 measurement: on EEVDF, with
// I_attacker−I_victim in [10µs, 15µs], the attacker repeatedly preempts
// the victim a median of 219 times across 165 runs.
func RunSec45(cfg Sec45Config) *Sec45Result {
	if cfg.Trials <= 0 {
		cfg.Trials = 165
	}
	res := &Sec45Result{Config: cfg}
	defer scopeTrialPool()()
	seed := cfg.Seed
	for i := 0; i < cfg.Trials; i++ {
		seed++
		// Sweep the measurement length across the paper's ΔI band.
		us := 10 + 5*float64(i)/float64(cfg.Trials)
		measure := timebase.Duration(us * 1000)
		p := runBurstTrial(EEVDF, 0, measure, seed)
		res.Lengths = append(res.Lengths, p.Preemptions)
	}
	res.Summary = stats.Summarize(res.Lengths)
	return res
}

// Median returns the distribution's median.
func (r *Sec45Result) Median() int64 { return r.Summary.Median }

// String renders the headline against the paper's number.
func (r *Sec45Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.5 — EEVDF repeated preemptions, ΔI∈[10,15]µs, %d runs\n", r.Config.Trials)
	fmt.Fprintf(&b, "  median %d (paper: 219), p10 %d, p90 %d, mean %.0f\n",
		r.Summary.Median, r.Summary.P10, r.Summary.P90, r.Summary.Mean)
	return b.String()
}
