package exps

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/ktrace"
	"repro/internal/timebase"
	"repro/internal/victim/loopvictim"
)

// Fig41Result is the vruntime walk of one Controlled Preemption burst: the
// attacker placed S_slack behind the victim at hibernation wake, the gap Δ
// shrinking by ΔI per nap, and the budget ending once Δ ≤ S_preempt
// (Figure 4.1's (a)-(e)).
type Fig41Result struct {
	// Samples are (time, Δ=τ_victim−τ_attacker) pairs at attacker wakes.
	Times  []timebase.Time
	Deltas []timebase.Duration
	// SlackAtWake is Δ at the first preemption (expected S_slack).
	SlackAtWake timebase.Duration
	// DeltaAtFailure is Δ at the failed wake (expected ≤ S_preempt).
	DeltaAtFailure timebase.Duration
	Preemptions    int64
}

// RunFig41 reproduces Figure 4.1 as a measured trace.
func RunFig41(seed uint64) *Fig41Result {
	m := NewMachine(CFS, seed)
	defer m.Shutdown()
	victim := m.Spawn("victim", func(e *kern.Env) {
		e.RunLoopForever(loopvictim.DefaultBody())
	}, kern.WithPin(0))
	rec := ktrace.NewRecorder()
	m.SetTracer(rec)

	res := &Fig41Result{}
	a := core.NewAttacker(core.Config{
		Epsilon:        2 * timebase.Microsecond,
		Hibernate:      70 * timebase.Millisecond,
		StopAfterBurst: true,
		Measure: func(e *kern.Env, s core.Sample) bool {
			e.Burn(15 * timebase.Microsecond)
			d := timebase.Duration(victim.Task().Vruntime - e.Thread().Task().Vruntime)
			res.Times = append(res.Times, e.Now())
			res.Deltas = append(res.Deltas, d)
			return true
		},
	})
	att := m.Spawn("attacker", a.Run, kern.WithPin(0))
	m.RunFor(3 * timebase.Second)

	res.Preemptions = a.Stats().Preemptions
	if len(res.Deltas) > 0 {
		res.SlackAtWake = res.Deltas[0]
	}
	// Δ as the failed Equation 2.2 check saw it.
	for _, w := range rec.Wakes {
		if w.Thread == att && !w.Preempted {
			res.DeltaAtFailure = timebase.Duration(w.CurrVruntime - w.WokenVruntime)
			break
		}
	}
	return res
}

// String renders a sampled walk.
func (r *Fig41Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig4.1 — vruntime gap Δ = τ_victim − τ_attacker over one budget\n")
	fmt.Fprintf(&b, "  Δ at hibernation wake: %s (S_slack = 12ms)\n", r.SlackAtWake)
	fmt.Fprintf(&b, "  preemptions until tripwire: %d\n", r.Preemptions)
	fmt.Fprintf(&b, "  Δ at failed preemption:  %s (S_preempt = 4ms)\n", r.DeltaAtFailure)
	step := len(r.Deltas) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(r.Deltas); i += step {
		bar := int(r.Deltas[i] / (400 * timebase.Microsecond))
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&b, "  nap %5d  Δ=%-9s |%s\n", i, r.Deltas[i], strings.Repeat("=", bar))
	}
	return b.String()
}
