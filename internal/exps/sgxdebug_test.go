package exps

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/ktrace"
	"repro/internal/timebase"
	"repro/internal/victim/base64"
)

// TestDebugSGXOnce is a diagnostic harness, not an assertion test: it dumps
// per-sample channel readings for one short base64 victim so decoding
// regressions are visible. Kept because it is cheap and documents the
// expected per-sample shape.
func TestDebugSGXOnce(t *testing.T) {
	input := "ABCDefgh0123+/IJKLmnop4567QRSTuvwx89abYZ"
	truth := base64.LineBits(input)

	m := NewMachine(CFS, 42, WithKernParams(func(kp *kern.Params) { kp.SpecProb = 0 }))
	defer m.Shutdown()
	prog, _, err := base64.BuildProgram(input, base64.DefaultLayout, base64.DefaultBuildOptions)
	if err != nil {
		t.Fatal(err)
	}
	victim := SpawnInvokedVictim(m, "sgx-victim", prog, 0,
		kern.WithEnclave(), kern.WithITLB(), kern.WithFetchThroughCache())
	rec := ktrace.NewRecorder()
	m.SetTracer(rec)

	var bits []int
	var esCode, esLUT0, esLUT1 *attack.EvictionSet
	started := false
	samples := 0
	a := core.NewAttacker(core.Config{
		Epsilon:        1720 * timebase.Nanosecond,
		Hibernate:      70 * timebase.Millisecond,
		StopAfterBurst: true,
		Measure: func(e *kern.Env, s core.Sample) bool {
			if !started {
				started = true
				esCode = attack.BuildEvictionSet(e, base64.DefaultLayout.ValidityCode, 16)
				esLUT0 = attack.BuildEvictionSet(e, base64.DefaultLayout.LUTLineAddr(0), 16)
				esLUT1 = attack.BuildEvictionSet(e, base64.DefaultLayout.LUTLineAddr(1), 16)
				esCode.Prime(e)
				esLUT0.Prime(e)
				esLUT1.Prime(e)
				victim.Invoke()
				return true
			}
			samples++
			_, missCode := esCode.Probe(e)
			_, m0 := esLUT0.Probe(e)
			_, m1 := esLUT1.Probe(e)
			if samples <= 60 {
				t.Logf("sample %3d: retired=%4d missCode=%d m0=%d m1=%d",
					samples, victim.Thread.Retired(), missCode, m0, m1)
			}
			if missCode > 0 {
				switch {
				case m0 > 0 && m1 == 0:
					bits = append(bits, 0)
				case m1 > 0 && m0 == 0:
					bits = append(bits, 1)
				case m0 > 0 && m1 > 0:
					bits = append(bits, 0, 1)
				}
			}
			return !victim.Done()
		},
	})
	m.Spawn("attacker", a.Run, kern.WithPin(0))
	m.Run(m.Now().Add(2*timebase.Second), func() bool { return victim.Done() })

	t.Logf("truth (%d): %v", len(truth), truth)
	t.Logf("bits  (%d): %v", len(bits), bits)
	t.Logf("prefix accuracy: %.3f, samples: %d", prefixAccuracy(bits, truth), samples)
}
