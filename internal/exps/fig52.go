package exps

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/leak"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/rsakeys"
	"repro/internal/timebase"
	"repro/internal/victim/base64"
)

// Fig52Config tunes the SGX base64/RSA-PEM attack.
type Fig52Config struct {
	// Keys is the number of randomized RSA-1024 keys (the paper uses 30).
	Keys int
	Seed uint64
}

// Fig52Result is the SGX attack outcome plus one probe-latency trace
// segment.
type Fig52Result struct {
	Config Fig52Config
	// MeanChars is the mean PEM-body length in base64 characters (paper:
	// 872 on average).
	MeanChars float64
	// SingleCoverage is the mean fraction of the LUT trace recovered in
	// one victim execution before the budget ran out (paper: 61.5%).
	SingleCoverage float64
	// SingleAccuracy is the accuracy over the covered prefix (paper:
	// 99.2%).
	SingleAccuracy float64
	// FullAccuracy is the accuracy of the two-run concatenated trace
	// (paper: 98.9%).
	FullAccuracy float64
	// TraceNames/TraceRows are a Figure 5.2-style probe-latency segment:
	// validity-code set, LUT set 0, LUT set 1.
	TraceNames []string
	TraceRows  [][]int64
	// MeanBitsLeaked is the key-search-space reduction of the two-run
	// spliced trace, per key (the "shrinks the search space" step the
	// paper hands to RSA cryptanalysis).
	MeanBitsLeaked float64
	// AnchorOK counts keys whose trace agreed with the public DER prefix.
	AnchorOK int
}

// sgxRun is one attacked victim execution.
type sgxRun struct {
	// bits is the recovered per-character LUT line sequence.
	bits []int
	// codeLat/lut0Lat/lut1Lat are per-sample probe latencies (for the
	// figure).
	codeLat, lut0Lat, lut1Lat []int64
}

// RunFig52 reproduces §5.2: LLC Prime+Probe against OpenSSL-style base64
// PEM decoding inside an SGX enclave, from userspace, including the
// insufficient-budget problem and its two-run trace-splicing fix.
func RunFig52(cfg Fig52Config) *Fig52Result {
	if cfg.Keys <= 0 {
		cfg.Keys = 30
	}
	res := &Fig52Result{Config: cfg}
	var covSum, accSum, fullSum, charSum float64
	r := rng.New(cfg.Seed ^ 0xb64)
	for k := 0; k < cfg.Keys; k++ {
		key, err := rsakeys.Generate(r.Fork(uint64(k)))
		if err != nil {
			panic(err)
		}
		input := key.PEMBody()
		truth := base64.LineBits(input)
		charSum += float64(len(input))

		// Run 1: attack from the start of the decode.
		run1 := runSGXOnce(input, 0, cfg.Seed+uint64(k*97))
		if res.TraceRows == nil {
			res.TraceNames = []string{"code", "LUT[0]", "LUT[1]"}
			n := len(run1.codeLat)
			if n > 260 {
				n = 260
			}
			res.TraceRows = [][]int64{run1.codeLat[:n], run1.lut0Lat[:n], run1.lut1Lat[:n]}
		}
		cov := float64(len(run1.bits)) / float64(len(truth))
		if cov > 1 {
			cov = 1
		}
		covSum += cov
		accSum += prefixAccuracy(run1.bits, truth)

		// Run 2: profile the victim's standalone duration, then start the
		// attack a bit before the halfway point and splice.
		profile := profileSGXDuration(input, cfg.Seed+uint64(k*97)+3)
		delay := timebase.Duration(float64(profile) * 0.45)
		run2 := runSGXOnce(input, delay, cfg.Seed+uint64(k*97)+7)
		full := spliceTraces(run1.bits, run2.bits, len(truth))
		fullSum += prefixAccuracy(full, truth)
		rep := leak.Analyze(input, full)
		res.MeanBitsLeaked += rep.BitsLeaked()
		if rep.PublicAnchorOK {
			res.AnchorOK++
		}
	}
	n := float64(cfg.Keys)
	res.MeanChars = charSum / n
	res.SingleCoverage = covSum / n
	res.SingleAccuracy = accSum / n
	res.FullAccuracy = fullSum / n
	res.MeanBitsLeaked /= n
	return res
}

// runSGXOnce attacks one victim execution, starting the preemption loop
// startDelay after the victim is invoked.
func runSGXOnce(input string, startDelay timebase.Duration, seed uint64) *sgxRun {
	// The paper's SGX victim is compiled with the LVI mitigation
	// (MITIGATION-CVE2020-0551=LOAD), which fences every load and thereby
	// suppresses the speculative touches that would otherwise smear the
	// cache channel (§5.2).
	m := NewMachine(CFS, seed, WithKernParams(func(kp *kern.Params) {
		kp.SpecProb = 0
	}))
	defer m.Shutdown()

	prog, _, err := base64.BuildProgram(input, base64.DefaultLayout, base64.DefaultBuildOptions)
	if err != nil {
		panic(err)
	}
	victim := SpawnInvokedVictim(m, "sgx-victim", prog, 0,
		kern.WithEnclave(), kern.WithITLB(), kern.WithFetchThroughCache())

	out := &sgxRun{}
	var esCode, esDecode, esLUT0, esLUT1 *attack.EvictionSet
	var group []int
	closeGroup := func() {
		if len(group) == 0 {
			return
		}
		out.bits = append(out.bits, snapChunk(group)...)
		group = nil
	}
	started := false
	// ε gives the victim a ~350ns window: wide enough for the in-flight
	// validity-loop LUT load to start (one character per preemption),
	// narrow enough that a second load essentially never does (§5.2's
	// "set I_victim to exactly one loop iteration").
	a := core.NewAttacker(core.Config{
		Epsilon:        1720 * timebase.Nanosecond,
		Hibernate:      70 * timebase.Millisecond,
		StopAfterBurst: true,
		Measure: func(e *kern.Env, s core.Sample) bool {
			if !started {
				started = true
				esCode = attack.BuildEvictionSet(e, base64.DefaultLayout.ValidityCode, 16)
				esDecode = attack.BuildEvictionSet(e, base64.DefaultLayout.DecodeCode, 16)
				esLUT0 = attack.BuildEvictionSet(e, base64.DefaultLayout.LUTLineAddr(0), 16)
				esLUT1 = attack.BuildEvictionSet(e, base64.DefaultLayout.LUTLineAddr(1), 16)
				esCode.Prime(e)
				esDecode.Prime(e)
				esLUT0.Prime(e)
				esLUT1.Prime(e)
				victim.Invoke()
				if startDelay > 0 {
					// §5.2 second run: let the victim progress, then
					// start preempting halfway through. The short sleep
					// keeps the attacker's sleeper placement.
					e.Nanosleep(startDelay)
					esCode.Prime(e)
					esDecode.Prime(e)
					esLUT0.Prime(e)
					esLUT1.Prime(e)
				}
				return true
			}
			// The recording/bookkeeping work of the real measurement
			// procedure (trace buffering, thresholding): this dominates
			// I_attacker and sets where the preemption budget runs out —
			// calibrated so a single victim execution covers the paper's
			// ~60% of the trace (see EXPERIMENTS.md).
			e.Burn(700 * timebase.Nanosecond)
			// Probe order: instruction sets first (they both stall the
			// victim and tell the loops apart), then the LUT sets;
			// probing re-primes each set.
			tCode, missCode := esCode.Probe(e)
			_, missDecode := esDecode.Probe(e)
			t0, m0 := esLUT0.Probe(e)
			t1, m1 := esLUT1.Probe(e)
			out.codeLat = append(out.codeLat, tCode)
			out.lut0Lat = append(out.lut0Lat, t0)
			out.lut1Lat = append(out.lut1Lat, t1)
			switch {
			case missCode > 0 && missDecode == 0:
				// Pure validity-loop nap: record which LUT line the
				// victim read.
				switch {
				case m0 > 0 && m1 == 0:
					group = append(group, 0)
				case m1 > 0 && m0 == 0:
					group = append(group, 1)
				case m0 > 0 && m1 > 0:
					// Two characters crossed a line boundary in one nap;
					// input order is unknown — emit low line first.
					group = append(group, 0, 1)
				}
			case missDecode > 0 && missCode == 0 && len(group) > 0:
				// The decode loop of this 64-char group started: close
				// and chunk-align the validity trace collected so far.
				closeGroup()
			}
			return !victim.Done()
		},
	})
	m.Spawn("attacker", a.Run, kern.WithPin(0))
	m.Run(m.Now().Add(5*timebase.Second), func() bool { return victim.Done() })
	closeGroup()
	return out
}

// snapChunk exploits EVP_DecodeUpdate's fixed 64-character grouping: a
// validity-loop phase covers exactly 64 input characters, so a recovered
// group near that length is aligned to it (trimming boundary duplicates,
// padding boundary drops). Groups far from 64 (the final partial chunk, or
// a budget-truncated one) are kept as observed. This keeps occasional
// per-chunk errors local instead of shifting the rest of the trace.
func snapChunk(group []int) []int {
	const chunk = 64
	if len(group) == chunk || len(group) < chunk-6 || len(group) > chunk+6 {
		return group
	}
	out := append([]int(nil), group...)
	for len(out) > chunk {
		out = out[:len(out)-1]
	}
	for len(out) < chunk {
		out = append(out, 1)
	}
	return out
}

// profileSGXDuration measures the victim's unattacked execution time — the
// offline profiling run the attacker uses to time its run-2 hibernation.
func profileSGXDuration(input string, seed uint64) timebase.Duration {
	m := NewMachine(CFS, seed)
	defer m.Shutdown()
	prog, _, err := base64.BuildProgram(input, base64.DefaultLayout, base64.DefaultBuildOptions)
	if err != nil {
		panic(err)
	}
	victim := SpawnInvokedVictim(m, "profile-victim", prog, 0,
		kern.WithEnclave(), kern.WithITLB(), kern.WithFetchThroughCache())
	victim.Invoke()
	var start, end timebase.Time
	start = m.Now()
	m.Run(m.Now().Add(timebase.Second), func() bool { return victim.Done() })
	end = m.Now()
	return end.Sub(start)
}

// prefixAccuracy scores got against the aligned prefix of want.
func prefixAccuracy(got, want []int) float64 {
	if len(got) == 0 {
		return 0
	}
	n := len(got)
	if n > len(want) {
		n = len(want)
	}
	match := 0
	for i := 0; i < n; i++ {
		if got[i] == want[i] {
			match++
		}
	}
	return float64(match) / float64(n)
}

// spliceTraces concatenates run-1's prefix with run-2's suffix by sliding
// run-2 over run-1's tail and picking the overlap offset with the best
// agreement (§5.2's concatenation step).
func spliceTraces(run1, run2 []int, total int) []int {
	if len(run2) == 0 {
		return run1
	}
	bestOff, bestScore := total-len(run2), -1.0
	lo := len(run1) - len(run2)
	if lo < 0 {
		lo = 0
	}
	hi := len(run1)
	for off := lo; off <= hi; off++ {
		// Overlap between run1[off:] and run2[:...].
		n := len(run1) - off
		if n > len(run2) {
			n = len(run2)
		}
		if n <= 0 {
			break
		}
		match := 0
		for i := 0; i < n; i++ {
			if run1[off+i] == run2[i] {
				match++
			}
		}
		score := float64(match)/float64(n) + float64(n)/float64(10*total)
		if score > bestScore {
			bestScore, bestOff = score, off
		}
	}
	out := append([]int(nil), run1[:min(bestOff, len(run1))]...)
	out = append(out, run2...)
	if len(out) > total {
		out = out[:total]
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String renders the headline numbers and the probe-latency segment.
func (r *Fig52Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5.2/fig5.2 — SGX base64 PEM decode, LLC Prime+Probe from userspace (%d RSA-1024 keys)\n", r.Config.Keys)
	fmt.Fprintf(&b, "  mean PEM body: %.0f base64 chars (paper: 872)\n", r.MeanChars)
	b.WriteString(report.PercentBar("single-run trace coverage (paper 61.5%)", r.SingleCoverage))
	b.WriteString(report.PercentBar("single-run accuracy (paper 99.2%)", r.SingleAccuracy))
	b.WriteString(report.PercentBar("two-run spliced accuracy (paper 98.9%)", r.FullAccuracy))
	fmt.Fprintf(&b, "  search-space reduction: %.0f bits/key over the secret region (public-prefix anchor ok: %d/%d)\n",
		r.MeanBitsLeaked, r.AnchorOK, r.Config.Keys)
	if len(r.TraceRows) == 3 {
		fmt.Fprintf(&b, "  probe-latency trace segment (validity loop shows high code-set latency):\n")
		b.WriteString(report.LatencyTrace(r.TraceNames, r.TraceRows, [2]int64{1000, 2500}))
	}
	return b.String()
}
