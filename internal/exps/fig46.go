package exps

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kern"
	"repro/internal/ktrace"
	"repro/internal/timebase"
)

// victimMarkerLine is a cache line the noisy-system victim touches every
// loop iteration — the template line the "victim ran last?" presence
// oracle monitors (§4.3).
const victimMarkerLine uint64 = 0x0049_0000

// Fig46Config tunes the scheduling-noise experiment.
type Fig46Config struct {
	// NoiseHeadStart is how long the noise thread runs alone before the
	// victim arrives (it is the pre-existing thread of §4.3's analysis).
	NoiseHeadStart timebase.Duration
	// AttackFor bounds the attack phase.
	AttackFor timebase.Duration
	Seed      uint64
}

// Fig46Result holds the vruntime progressions and the post-convergence
// behaviour.
type Fig46Result struct {
	Config Fig46Config
	// VSeries/NSeries/ASeries are (time, vruntime) samples per thread.
	VSeries, NSeries, ASeries []ktrace.VSample
	// ConvergeAt is when the victim's vruntime first reached the noise
	// thread's (the dashed line of Figure 4.6).
	ConvergeAt timebase.Time
	// PatternAfter is the post-convergence sched-in pattern over
	// {V,N,A} within one attack burst; the paper reports ((V|N)A)+.
	PatternAfter string
	// PatternFull is the whole post-convergence pattern (bursts and
	// hibernation gaps included).
	PatternFull string
	// PatternOK reports whether the pattern matches ((V|N)A)+.
	PatternOK bool
	// OracleAccuracy is the "victim ran last?" oracle's agreement with
	// scheduler ground truth over the attack's samples.
	OracleAccuracy float64
	// Preemptions achieved despite the noise thread.
	Preemptions int64
}

// RunFig46 reproduces Figure 4.6: Controlled Preemption in a noisy system
// with a third compute-bound thread, plus the template-attack presence
// oracle that keeps the attack usable after the victim and noise vruntimes
// converge.
func RunFig46(cfg Fig46Config) *Fig46Result {
	if cfg.NoiseHeadStart <= 0 {
		cfg.NoiseHeadStart = 30 * timebase.Millisecond
	}
	if cfg.AttackFor <= 0 {
		cfg.AttackFor = 400 * timebase.Millisecond
	}
	m := NewMachine(CFS, cfg.Seed)
	defer m.Shutdown()

	rec := ktrace.NewRecorder()
	rec.SampleVruntime = true
	m.SetTracer(rec)

	// The pre-existing noise thread: pure compute, no system calls.
	noise := m.Spawn("noise", func(e *kern.Env) {
		b := isa.NewBuilder("noise", 0x004a_0000, 4)
		b.ALU(64)
		e.RunLoopForever(b.Build().Insts)
	}, kern.WithPin(0))
	m.RunFor(cfg.NoiseHeadStart)

	// The victim: its loop touches the marker line every few instructions
	// (a realistic victim constantly touches its own hot lines; the
	// template attack of §4.3 picks one such line offline).
	vb := isa.NewBuilder("victim", 0x0040_0000, 4)
	for i := 0; i < 8; i++ {
		vb.ALU(3)
		vb.Load(victimMarkerLine)
	}
	victimBody := vb.Build().Insts
	victim := m.Spawn("victim", func(e *kern.Env) {
		e.RunLoopForever(victimBody)
	}, kern.WithPin(0))

	// The attacker: Flush+Reload presence oracle on the marker line.
	var samples []presenceSample
	a := core.NewAttacker(core.Config{
		Epsilon:   2 * timebase.Microsecond,
		Hibernate: 70 * timebase.Millisecond,
		Measure: func(e *kern.Env, s core.Sample) bool {
			fr := attack.NewFlushReload(e, []uint64{victimMarkerLine})
			hit := fr.Reload(e)[0]
			fr.Flush(e)
			e.Burn(8 * timebase.Microsecond)
			samples = append(samples, presenceSample{At: e.Now(), VictimRan: hit})
			return true
		},
	})
	m.Spawn("attacker", a.Run, kern.WithPin(0))
	m.RunFor(cfg.AttackFor)

	res := &Fig46Result{Config: cfg, Preemptions: a.Stats().Preemptions}
	res.VSeries = rec.VSeriesOf(victim.ID())
	res.NSeries = rec.VSeriesOf(noise.ID())
	for _, t := range m.Threads() {
		if t.Name() == "attacker" {
			res.ASeries = rec.VSeriesOf(t.ID())
		}
	}

	// Convergence: first time victim vruntime reaches the noise thread's.
	nv := func(at timebase.Time) int64 {
		last := int64(0)
		for _, s := range res.NSeries {
			if s.At > at {
				break
			}
			last = s.Vruntime
		}
		return last
	}
	for _, s := range res.VSeries {
		if s.Vruntime >= nv(s.At) && nv(s.At) > 0 {
			res.ConvergeAt = s.At
			break
		}
	}

	// Post-convergence pattern over the three threads, starting from the
	// first attacker stint after convergence (the regime the paper's
	// zoom-in shows; convergence itself may happen while the attacker
	// hibernates).
	labels := map[int]byte{victim.ID(): 'V', noise.ID(): 'N'}
	for _, t := range m.Threads() {
		if t.Name() == "attacker" {
			labels[t.ID()] = 'A'
		}
	}
	var pat []byte
	seenA := false
	for _, st := range rec.Stints {
		if st.Start < res.ConvergeAt {
			continue
		}
		l, ok := labels[st.Thread.ID()]
		if !ok {
			continue
		}
		if !seenA {
			if l != 'A' {
				continue
			}
			seenA = true
		}
		pat = append(pat, l)
	}
	res.PatternFull = string(pat)
	// Evaluate the alternation within one attack burst (between
	// hibernations the schedule is just V/N time-slicing).
	if len(pat) > 200 {
		pat = pat[:200]
	}
	res.PatternAfter = string(pat)
	res.PatternOK = patternIsVNAlternating(res.PatternAfter)

	// Oracle accuracy: compare each presence sample with the scheduler's
	// ground truth (which of V/N ran immediately before the attacker's
	// stint).
	res.OracleAccuracy = oracleAccuracy(rec, labels, samples)
	return res
}

// presenceSample is one "victim ran last?" oracle reading.
type presenceSample struct {
	At        timebase.Time
	VictimRan bool
}

// oracleAccuracy scores the presence oracle's precision: of the samples
// where it reported "victim ran last" (the only ones the attack records,
// §4.3), how many had the victim as the last thread to actually retire
// instructions before the sample. Zero-step stints don't count as running —
// nothing executed, so there is nothing to observe or record.
func oracleAccuracy(rec *ktrace.Recorder, labels map[int]byte, samples []presenceSample) float64 {
	si := 0
	lastVN := byte(0)
	recorded, correct := 0, 0
	for _, s := range samples {
		for si < len(rec.Stints) && rec.Stints[si].End <= s.At {
			st := rec.Stints[si]
			if l := labels[st.Thread.ID()]; (l == 'V' || l == 'N') && st.Retired > 0 {
				lastVN = l
			}
			si++
		}
		if s.VictimRan {
			recorded++
			if lastVN == 'V' {
				correct++
			}
		}
	}
	if recorded == 0 {
		return 0
	}
	return float64(correct) / float64(recorded)
}

// patternIsVNAlternating checks ((V|N)A)+ allowing a leading A.
func patternIsVNAlternating(p string) bool {
	if len(p) < 4 {
		return false
	}
	expectA := false
	for i := 0; i < len(p); i++ {
		c := p[i]
		if i == 0 && c == 'A' {
			expectA = false
			continue
		}
		if expectA {
			if c != 'A' {
				return false
			}
		} else if c != 'V' && c != 'N' {
			return false
		}
		expectA = !expectA
	}
	return true
}

// SawBothAfterConvergence reports whether both V and N appear in the
// post-convergence interleave (the unpredictable (V|N) of the paper).
func (r *Fig46Result) SawBothAfterConvergence() bool {
	return strings.ContainsRune(r.PatternFull, 'V') && strings.ContainsRune(r.PatternFull, 'N')
}

// String renders the experiment.
func (r *Fig46Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig4.6 — noisy system (V, N, A on one core)\n")
	fmt.Fprintf(&b, "  victim/noise vruntimes converge at: %v\n", r.ConvergeAt)
	pat := r.PatternAfter
	if len(pat) > 60 {
		pat = pat[:60] + "..."
	}
	fmt.Fprintf(&b, "  post-convergence schedule: %s\n", pat)
	fmt.Fprintf(&b, "  pattern ((V|N)A)+: %v, both V and N appear: %v\n", r.PatternOK, r.SawBothAfterConvergence())
	fmt.Fprintf(&b, "  presence-oracle accuracy: %.1f%% over %d samples\n", 100*r.OracleAccuracy, r.Preemptions)
	return b.String()
}
