package exps

import "testing"

func TestAblationNoWakeupPreemption(t *testing.T) {
	r := RunAblationNoWakeupPreemption(41)
	t.Log("\n" + r.String())
	if r.BaselineBurst < 300 {
		t.Fatalf("baseline burst = %d", r.BaselineBurst)
	}
	if r.VariantBurst != 0 {
		t.Fatalf("mitigated burst = %d, want 0", r.VariantBurst)
	}
	// Resolution collapses by orders of magnitude.
	if r.VariantStep < 1000*r.BaselineStep {
		t.Fatalf("resolution did not collapse: %d → %d", r.BaselineStep, r.VariantStep)
	}
}

func TestAblationGentleFairSleepers(t *testing.T) {
	r := RunAblationGentleFairSleepers(43)
	t.Log("\n" + r.String())
	// Budget 8ms → 20ms: ≈2.5× more preemptions.
	ratio := float64(r.VariantBurst) / float64(r.BaselineBurst)
	if ratio < 2.0 || ratio > 3.0 {
		t.Fatalf("gentle-off burst ratio = %.2f, want ≈2.5", ratio)
	}
	// Temporal resolution unaffected.
	if r.VariantStep > 3*r.BaselineStep {
		t.Fatalf("resolution changed: %d → %d", r.BaselineStep, r.VariantStep)
	}
}

func TestAblationDefaultTimerSlack(t *testing.T) {
	r := RunAblationDefaultTimerSlack(47)
	t.Log("\n" + r.String())
	// With 50µs slack the victim runs far longer per step.
	if r.VariantStep < 20*r.BaselineStep {
		t.Fatalf("slack did not degrade resolution: %d → %d", r.BaselineStep, r.VariantStep)
	}
}

func TestAblationRoundRobin(t *testing.T) {
	r := RunAblationRoundRobin(53, 1500)
	t.Log("\n" + r.String())
	// Round-robin avoids the per-budget re-hibernation, so it is
	// substantially faster to the same preemption count.
	if r.VariantBurst >= r.BaselineBurst {
		t.Fatalf("round-robin (%dms) not faster than single thread (%dms)",
			r.VariantBurst, r.BaselineBurst)
	}
}
