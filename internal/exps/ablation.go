package exps

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/kern"
	"repro/internal/ktrace"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/timebase"
	"repro/internal/victim/loopvictim"
)

// AblationResult compares the attack under a configuration change against
// the baseline.
type AblationResult struct {
	Name string
	// BaselineBurst and VariantBurst are consecutive-preemption medians.
	BaselineBurst, VariantBurst int64
	// BaselineStep and VariantStep are median victim instructions per
	// attacker interleave (temporal resolution; lower is better for the
	// attacker).
	BaselineStep, VariantStep int64
	Note                      string
}

// String renders the comparison.
func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ablation — %s\n", r.Name)
	fmt.Fprintf(&b, "  burst (median preemptions): baseline %d → variant %d\n", r.BaselineBurst, r.VariantBurst)
	fmt.Fprintf(&b, "  victim instrs/interleave (median): baseline %d → variant %d\n", r.BaselineStep, r.VariantStep)
	if r.Note != "" {
		fmt.Fprintf(&b, "  %s\n", r.Note)
	}
	return b.String()
}

// ablationAttack is the fixed probe attack: 3 bursts, ε=2µs, 12µs
// measurement. timerSlack > 1 models an attacker that skipped the
// PR_SET_TIMERSLACK step.
func ablationAttack(timerSlack timebase.Duration) kern.Func {
	return func(e *kern.Env) {
		if timerSlack > 1 {
			e.SetTimerSlack(timerSlack)
		} else {
			e.SetTimerSlack(1)
		}
		for burst := 0; burst < 3; burst++ {
			e.Nanosleep(70 * timebase.Millisecond)
			for {
				e.Nanosleep(2 * timebase.Microsecond)
				if !e.Thread().LastWakePreempted() {
					break
				}
				e.Burn(12 * timebase.Microsecond)
			}
		}
	}
}

// ablationProbe runs the probe attack against a machine configuration and
// reports (median burst length, median victim instructions per attacker
// interleave).
func ablationProbe(seed uint64, slack timebase.Duration, opts ...MachineOption) (int64, int64) {
	m := NewMachine(CFS, seed, opts...)
	defer m.Shutdown()
	victim := m.Spawn("victim", func(e *kern.Env) {
		e.RunLoopForever(loopvictim.DefaultBody())
	}, kern.WithPin(0))
	rec := ktrace.NewRecorder()
	m.SetTracer(rec)
	att := m.Spawn("attacker", ablationAttack(slack), kern.WithPin(0))
	m.RunFor(2 * timebase.Second)

	// Burst = attacker's successful-preemption runs; steps = victim
	// instructions retired between attacker interleaves (any sched-out
	// reason — with wakeup preemption disabled the interleave only
	// happens at tick preemptions, and the resolution collapses).
	bursts := rec.PreemptionBursts(att)
	var steps []int64
	for _, st := range rec.Stints {
		if st.Thread == victim && st.End.Sub(st.Start) < 60*timebase.Millisecond {
			steps = append(steps, st.Retired)
		}
	}
	return stats.MedianInt64(bursts), stats.MedianInt64(steps)
}

// RunAblationNoWakeupPreemption evaluates the Linux security team's
// recommended mitigation (Chapter 6): with NO_WAKEUP_PREEMPTION the waking
// attacker cannot preempt the victim mid-slice and the attack collapses.
func RunAblationNoWakeupPreemption(seed uint64) *AblationResult {
	defer scopeTrialPool()()
	bb, bs := ablationProbe(seed, 0)
	vb, vs := ablationProbe(seed+1, 0, WithSchedParams(func(sp *sched.Params) {
		sp.WakeupPreemption = false
	}))
	return &AblationResult{
		Name:          "NO_WAKEUP_PREEMPTION (Chapter 6 mitigation)",
		BaselineBurst: bb, VariantBurst: vb,
		BaselineStep: bs, VariantStep: vs,
		Note: "with the mitigation the attacker only runs at Scenario-1 slice boundaries: zero wakeup preemptions, million-instruction resolution",
	}
}

// RunAblationGentleFairSleepers evaluates GENTLE_FAIR_SLEEPERS off
// (S_slack = S_bnd = 24ms instead of 12ms): the preemption budget grows
// from 8ms to 20ms, ~2.5× more preemptions per hibernation.
func RunAblationGentleFairSleepers(seed uint64) *AblationResult {
	defer scopeTrialPool()()
	bb, bs := ablationProbe(seed, 0)
	vb, vs := ablationProbe(seed+1, 0, WithSchedParams(func(sp *sched.Params) {
		sp.GentleFairSleepers = false
	}))
	return &AblationResult{
		Name:          "GENTLE_FAIR_SLEEPERS off (S_slack = S_bnd)",
		BaselineBurst: bb, VariantBurst: vb,
		BaselineStep: bs, VariantStep: vs,
		Note: "sleeper credit doubles: budget grows from S_bnd/2−S_preempt=8ms to S_bnd−S_preempt=20ms (≈2.5× preemptions)",
	}
}

// RunAblationDefaultTimerSlack evaluates skipping the PR_SET_TIMERSLACK
// step of §4.2: with the default 50µs slack, wake-up times smear across
// tens of microseconds and temporal resolution is destroyed.
func RunAblationDefaultTimerSlack(seed uint64) *AblationResult {
	defer scopeTrialPool()()
	bb, bs := ablationProbe(seed, 0)
	vb, vs := ablationProbe(seed+1, 50*timebase.Microsecond)
	return &AblationResult{
		Name:          "default timer slack (no PR_SET_TIMERSLACK)",
		BaselineBurst: bb, VariantBurst: vb,
		BaselineStep: bs, VariantStep: vs,
		Note: "the 50µs default slack turns ε into ε+U[0,50µs]: preemptions still land but the victim runs far longer per step",
	}
}

// RunAblationRoundRobin contrasts the single-thread budget against the
// §4.3 round-robin extension for an attack needing more preemptions than
// one budget holds.
func RunAblationRoundRobin(seed uint64, target int) *AblationResult {
	if target <= 0 {
		target = 2500
	}
	defer scopeTrialPool()()
	// Single thread: bursts with re-hibernation gaps.
	m1 := NewMachine(CFS, seed)
	m1.Spawn("victim", func(e *kern.Env) {
		e.RunLoopForever(loopvictim.DefaultBody())
	}, kern.WithPin(0))
	a := core.NewAttacker(core.Config{
		Epsilon:        2 * timebase.Microsecond,
		Hibernate:      70 * timebase.Millisecond,
		MaxPreemptions: target,
		Measure: func(e *kern.Env, s core.Sample) bool {
			e.Burn(12 * timebase.Microsecond)
			return true
		},
	})
	m1.Spawn("attacker", a.Run, kern.WithPin(0))
	start1 := m1.Now()
	var end1 timebase.Time
	m1.Run(m1.Now().Add(30*timebase.Second), func() bool {
		if a.Stats().Preemptions >= int64(target) {
			end1 = m1.Now()
			return true
		}
		return false
	})
	m1.Shutdown()

	// Round-robin with 8 threads: continuous.
	m2 := NewMachine(CFS, seed+1)
	m2.Spawn("victim", func(e *kern.Env) {
		e.RunLoopForever(loopvictim.DefaultBody())
	}, kern.WithPin(0))
	rr := core.NewRoundRobin(core.Config{
		Epsilon:   2 * timebase.Microsecond,
		Hibernate: 70 * timebase.Millisecond,
		Measure: func(e *kern.Env, s core.Sample) bool {
			e.Burn(12 * timebase.Microsecond)
			return s.Index < target-1
		},
	}, 8)
	rr.SpawnAll(m2, 0)
	start2 := m2.Now()
	var end2 timebase.Time
	m2.Run(m2.Now().Add(30*timebase.Second), func() bool {
		if rr.Preemptions() >= int64(target) {
			end2 = m2.Now()
			return true
		}
		return false
	})
	m2.Shutdown()

	return &AblationResult{
		Name:          fmt.Sprintf("round-robin budget extension (%d preemptions)", target),
		BaselineBurst: int64(end1.Sub(start1) / timebase.Millisecond),
		VariantBurst:  int64(end2.Sub(start2) / timebase.Millisecond),
		Note:          "burst columns here are total attack time in ms: single-thread pays a hibernation per budget, round-robin hands off without gaps",
	}
}
