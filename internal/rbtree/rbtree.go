// Package rbtree implements the augmented red-black tree the Linux CFS
// keeps its runqueue in: tasks ordered by virtual runtime with a cached
// leftmost node, so the scheduler's pick-next is O(1) and insert/erase are
// O(log n). The reproduction's runqueues are tiny (an attacker, a victim,
// a few noise threads), but the structure is part of the substrate the
// paper's scheduler analysis rests on, and it keeps the simulation honest
// for experiments that flood the runqueue.
//
// Keys are (key, id) pairs: id breaks ties deterministically, mirroring
// the kernel's stable ordering of equal-vruntime entities.
//
// The tree is generic over its element type so items are stored inline in
// the nodes (no interface boxing per insert), and detached nodes go on a
// freelist — the enqueue/dequeue churn of a steady-state scheduler performs
// no heap allocations.
package rbtree

// Item is an element stored in the tree.
type Item interface {
	// Key is the ordering key (vruntime).
	Key() int64
	// ID breaks key ties deterministically.
	ID() int
}

type color bool

const (
	red   color = false
	black color = true
)

type node[T Item] struct {
	item                T
	left, right, parent *node[T]
	color               color
}

// Tree is an intrusive-style red-black tree with leftmost caching.
type Tree[T Item] struct {
	root     *node[T]
	leftmost *node[T]
	// free chains detached nodes (via right) for reuse by Insert.
	free *node[T]
	size int
}

// New returns an empty tree.
func New[T Item]() *Tree[T] { return &Tree[T]{} }

// Len returns the number of stored items.
func (t *Tree[T]) Len() int { return t.size }

// less orders items by (Key, ID).
func less[T Item](a, b T) bool {
	if a.Key() != b.Key() {
		return a.Key() < b.Key()
	}
	return a.ID() < b.ID()
}

// Min returns the leftmost (smallest) item; ok is false on an empty tree.
func (t *Tree[T]) Min() (item T, ok bool) {
	if t.leftmost == nil {
		return item, false
	}
	return t.leftmost.item, true
}

// newNode takes a node off the freelist, or allocates one.
func (t *Tree[T]) newNode(item T) *node[T] {
	if n := t.free; n != nil {
		t.free = n.right
		n.right = nil
		n.item = item
		return n
	}
	return &node[T]{item: item}
}

// releaseNode clears a detached node and chains it on the freelist.
func (t *Tree[T]) releaseNode(n *node[T]) {
	var zero T
	*n = node[T]{item: zero, right: t.free}
	t.free = n
}

// Insert adds item to the tree. Inserting the same item twice corrupts the
// tree; callers track membership.
func (t *Tree[T]) Insert(item T) {
	n := t.newNode(item)
	// BST insert.
	var parent *node[T]
	cur := t.root
	wentLeftAlways := true
	for cur != nil {
		parent = cur
		if less(item, cur.item) {
			cur = cur.left
		} else {
			cur = cur.right
			wentLeftAlways = false
		}
	}
	n.parent = parent
	switch {
	case parent == nil:
		t.root = n
	case less(item, parent.item):
		parent.left = n
	default:
		parent.right = n
	}
	if wentLeftAlways {
		t.leftmost = n
	}
	t.size++
	t.insertFixup(n)
}

// Delete removes the node holding item (matched by Key+ID identity). It
// reports whether the item was found.
func (t *Tree[T]) Delete(item T) bool {
	n := t.find(item)
	if n == nil {
		return false
	}
	if n == t.leftmost {
		t.leftmost = successor(n)
	}
	t.deleteNode(n)
	t.size--
	t.releaseNode(n)
	return true
}

// Contains reports whether item (by Key+ID) is in the tree.
func (t *Tree[T]) Contains(item T) bool { return t.find(item) != nil }

// Each visits items in ascending order.
func (t *Tree[T]) Each(fn func(T) bool) {
	for n := t.leftmost; n != nil; n = successor(n) {
		if !fn(n.item) {
			return
		}
	}
}

// Items returns all items in ascending order (for tests and traces).
func (t *Tree[T]) Items() []T {
	out := make([]T, 0, t.size)
	t.Each(func(i T) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Clear releases every node to the freelist and empties the tree. Storage
// is retained: a cleared tree re-fills without heap allocations up to its
// previous high-water mark.
func (t *Tree[T]) Clear() {
	clearSub(t, t.root)
	t.root = nil
	t.leftmost = nil
	t.size = 0
}

func clearSub[T Item](t *Tree[T], n *node[T]) {
	if n == nil {
		return
	}
	clearSub(t, n.left)
	clearSub(t, n.right)
	t.releaseNode(n)
}

// CloneInto replaces dst's contents with a deep structural copy of t: node
// shape, colors, size and the leftmost cache are replicated exactly, so the
// clone is indistinguishable from the original tree — not merely
// equal-ordered. Items pass through remap (nil keeps them as-is), which is
// how a machine snapshot translates task pointers between machines. Nodes
// come from dst's freelist, so cloning into a warm tree allocates nothing.
func (t *Tree[T]) CloneInto(dst *Tree[T], remap func(T) T) {
	if dst == t {
		panic("rbtree: CloneInto self")
	}
	dst.Clear()
	if remap == nil {
		remap = func(x T) T { return x }
	}
	dst.root = cloneSub(dst, t.root, nil, remap)
	dst.size = t.size
	lm := dst.root
	for lm != nil && lm.left != nil {
		lm = lm.left
	}
	dst.leftmost = lm
}

func cloneSub[T Item](dst *Tree[T], src, parent *node[T], remap func(T) T) *node[T] {
	if src == nil {
		return nil
	}
	n := dst.newNode(remap(src.item))
	n.parent = parent
	n.color = src.color
	n.left = cloneSub(dst, src.left, n, remap)
	n.right = cloneSub(dst, src.right, n, remap)
	return n
}

// find locates the node with the same (Key, ID) as item.
func (t *Tree[T]) find(item T) *node[T] {
	cur := t.root
	for cur != nil {
		switch {
		case less(item, cur.item):
			cur = cur.left
		case less(cur.item, item):
			cur = cur.right
		default:
			return cur
		}
	}
	return nil
}

func successor[T Item](n *node[T]) *node[T] {
	if n.right != nil {
		n = n.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	for n.parent != nil && n == n.parent.right {
		n = n.parent
	}
	return n.parent
}

func (t *Tree[T]) rotateLeft(x *node[T]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[T]) rotateRight(x *node[T]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[T]) insertFixup(z *node[T]) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateRight(gp)
		} else {
			u := gp.left
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = black
			gp.color = red
			t.rotateLeft(gp)
		}
	}
	t.root.color = black
}

// transplant replaces subtree u with subtree v.
func (t *Tree[T]) transplant(u, v *node[T]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree[T]) deleteNode(z *node[T]) {
	y := z
	yColor := y.color
	var x *node[T]
	var xParent *node[T]
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != nil {
			y = y.left
		}
		yColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yColor == black {
		t.deleteFixup(x, xParent)
	}
}

func (t *Tree[T]) deleteFixup(x *node[T], parent *node[T]) {
	for x != t.root && (x == nil || x.color == black) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if (w.left == nil || w.left.color == black) && (w.right == nil || w.right.color == black) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if w.right == nil || w.right.color == black {
				if w.left != nil {
					w.left.color = black
				}
				w.color = red
				t.rotateRight(w)
				w = parent.right
			}
			w.color = parent.color
			parent.color = black
			if w.right != nil {
				w.right.color = black
			}
			t.rotateLeft(parent)
			x = t.root
			parent = nil
		} else {
			w := parent.left
			if w.color == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if (w.left == nil || w.left.color == black) && (w.right == nil || w.right.color == black) {
				w.color = red
				x = parent
				parent = x.parent
				continue
			}
			if w.left == nil || w.left.color == black {
				if w.right != nil {
					w.right.color = black
				}
				w.color = red
				t.rotateLeft(w)
				w = parent.left
			}
			w.color = parent.color
			parent.color = black
			if w.left != nil {
				w.left.color = black
			}
			t.rotateRight(parent)
			x = t.root
			parent = nil
		}
	}
	if x != nil {
		x.color = black
	}
}

// validate checks the red-black invariants; tests use it.
func (t *Tree[T]) validate() error {
	if t.root == nil {
		if t.leftmost != nil || t.size != 0 {
			return errInvariant("empty tree with cached state")
		}
		return nil
	}
	if t.root.color != black {
		return errInvariant("root not black")
	}
	// Leftmost cache correct?
	n := t.root
	for n.left != nil {
		n = n.left
	}
	if n != t.leftmost {
		return errInvariant("leftmost cache stale")
	}
	_, err := checkNode(t.root)
	return err
}

type errInvariant string

func (e errInvariant) Error() string { return "rbtree: " + string(e) }

// checkNode returns the black-height of the subtree.
func checkNode[T Item](n *node[T]) (int, error) {
	if n == nil {
		return 1, nil
	}
	if n.color == red {
		if (n.left != nil && n.left.color == red) || (n.right != nil && n.right.color == red) {
			return 0, errInvariant("red node with red child")
		}
	}
	if n.left != nil {
		if n.left.parent != n {
			return 0, errInvariant("broken parent link")
		}
		if !less(n.left.item, n.item) {
			return 0, errInvariant("left ordering violated")
		}
	}
	if n.right != nil {
		if n.right.parent != n {
			return 0, errInvariant("broken parent link")
		}
		if !less(n.item, n.right.item) {
			return 0, errInvariant("right ordering violated")
		}
	}
	lh, err := checkNode(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := checkNode(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errInvariant("black height mismatch")
	}
	if n.color == black {
		lh++
	}
	return lh, nil
}
