package rbtree

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

type it struct {
	key int64
	id  int
}

func (i it) Key() int64 { return i.key }
func (i it) ID() int    { return i.id }

func TestEmpty(t *testing.T) {
	tr := New[it]()
	if _, ok := tr.Min(); tr.Len() != 0 || ok {
		t.Fatal("empty tree state")
	}
	if tr.Delete(it{1, 1}) {
		t.Fatal("delete from empty succeeded")
	}
	if err := tr.validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertMinDelete(t *testing.T) {
	tr := New[it]()
	items := []it{{5, 1}, {3, 2}, {8, 3}, {3, 1}, {1, 4}}
	for _, i := range items {
		tr.Insert(i)
		if err := tr.validate(); err != nil {
			t.Fatalf("after insert %v: %v", i, err)
		}
	}
	if tr.Len() != 5 {
		t.Fatalf("len = %d", tr.Len())
	}
	if m, _ := tr.Min(); m != (it{1, 4}) {
		t.Fatalf("min = %v", m)
	}
	// Tie-break by ID: delete the leftmost repeatedly, expect sorted order.
	want := []it{{1, 4}, {3, 1}, {3, 2}, {5, 1}, {8, 3}}
	for _, w := range want {
		m, ok := tr.Min()
		if !ok || m != w {
			t.Fatalf("min = %v, want %v", m, w)
		}
		if !tr.Delete(m) {
			t.Fatalf("delete %v failed", m)
		}
		if err := tr.validate(); err != nil {
			t.Fatalf("after delete %v: %v", m, err)
		}
	}
	if _, ok := tr.Min(); tr.Len() != 0 || ok {
		t.Fatal("tree not empty at end")
	}
}

func TestContainsAndMiss(t *testing.T) {
	tr := New[it]()
	tr.Insert(it{10, 1})
	tr.Insert(it{20, 2})
	if !tr.Contains(it{10, 1}) || tr.Contains(it{10, 2}) || tr.Contains(it{15, 1}) {
		t.Fatal("contains broken")
	}
	if tr.Delete(it{10, 2}) {
		t.Fatal("deleted a missing item")
	}
}

func TestEachAscendingAndEarlyStop(t *testing.T) {
	tr := New[it]()
	for i := 0; i < 20; i++ {
		tr.Insert(it{int64((i * 7) % 20), i})
	}
	var keys []int64
	tr.Each(func(x it) bool {
		keys = append(keys, x.Key())
		return true
	})
	if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
		t.Fatalf("not ascending: %v", keys)
	}
	n := 0
	tr.Each(func(it) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestRandomOpsAgainstSortedSlice drives random inserts/deletes against a
// reference model while checking invariants continuously.
func TestRandomOpsAgainstSortedSlice(t *testing.T) {
	r := rng.New(99)
	tr := New[it]()
	ref := map[it]bool{}
	for op := 0; op < 5000; op++ {
		x := it{key: r.Int63n(50), id: int(r.Int63n(50))}
		if ref[x] {
			if !tr.Delete(x) {
				t.Fatalf("op %d: delete %v missing", op, x)
			}
			delete(ref, x)
		} else {
			tr.Insert(x)
			ref[x] = true
		}
		if op%37 == 0 {
			if err := tr.validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if tr.Len() != len(ref) {
				t.Fatalf("op %d: len %d vs ref %d", op, tr.Len(), len(ref))
			}
		}
	}
	if err := tr.validate(); err != nil {
		t.Fatal(err)
	}
	// Final: ascending traversal equals sorted reference.
	var want []it
	for x := range ref {
		want = append(want, x)
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a].key != want[b].key {
			return want[a].key < want[b].key
		}
		return want[a].id < want[b].id
	})
	got := tr.Items()
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestQuickMinIsSmallest: property check that Min equals the model's
// minimum after a random insert batch.
func TestQuickMinIsSmallest(t *testing.T) {
	f := func(keys []int16) bool {
		tr := New[it]()
		for i, k := range keys {
			tr.Insert(it{int64(k), i})
		}
		if len(keys) == 0 {
			_, ok := tr.Min()
			return !ok
		}
		min := keys[0]
		for _, k := range keys {
			if k < min {
				min = k
			}
		}
		m, ok := tr.Min()
		return ok && m.Key() == int64(min) && tr.validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyStateChurnAllocs: the freelist makes delete/insert churn at a
// stable population allocation-free — the scheduler's enqueue/dequeue path
// rides on this.
func TestSteadyStateChurnAllocs(t *testing.T) {
	r := rng.New(7)
	tr := New[it]()
	items := make([]it, 64)
	for i := range items {
		items[i] = it{key: r.Int63n(1 << 30), id: i}
		tr.Insert(items[i])
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := range items {
			tr.Delete(items[i])
			tr.Insert(items[i])
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state churn allocates %.1f allocs/run, want 0", avg)
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	r := rng.New(1)
	tr := New[it]()
	items := make([]it, 1024)
	for i := range items {
		items[i] = it{key: r.Int63n(1 << 30), id: i}
		tr.Insert(items[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := items[i%len(items)]
		tr.Delete(x)
		tr.Insert(x)
	}
}
