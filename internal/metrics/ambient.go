package metrics

import "repro/internal/gls"

// Ambient telemetry follows the same harness-state pattern as
// exps.SetChaos: experiment drivers construct machines deep inside Run
// functions with no way to thread a registry through, so the CLI (or a
// test) installs one ambiently around the run and restores the previous
// value after. The default is nil — telemetry fully off — and a nil
// ambient registry/profiler propagates as nil instrument handles, keeping
// the uninstrumented cost to one branch per site.
//
// Two layers compose:
//
//   - The process-wide default (SetAmbient / SetAmbientProfiler), written
//     only from a driving goroutine with no experiments in flight — it is
//     not synchronized, exactly like the other harness-state globals.
//   - A goroutine-scoped override (ScopeAmbient / ScopeAmbientProfiler),
//     which shadows the default for the installing goroutine only. The
//     parallel campaign engine installs one per worker, so concurrent
//     entries each report into their own registry while the rest of the
//     process keeps seeing the default.
//
// Ambient() resolves scope-first. Simulation hot paths never call it —
// machines capture their registry once at construction and hand cached
// instrument handles around.

var (
	ambient     *Registry
	ambientProf *Profiler

	scopedReg  gls.Store[*Registry]
	scopedProf gls.Store[*Profiler]
)

// SetAmbient installs r as the process-wide ambient registry and returns
// the previous one so callers can restore it (defer metrics.SetAmbient(prev)).
func SetAmbient(r *Registry) (prev *Registry) {
	prev = ambient
	ambient = r
	return prev
}

// Ambient returns the ambient registry: the calling goroutine's scoped
// override when one is installed, else the process-wide default (nil when
// telemetry is off).
func Ambient() *Registry {
	if r, ok := scopedReg.Get(); ok {
		return r
	}
	return ambient
}

// ScopeAmbient installs r as the calling goroutine's ambient registry and
// returns the restore function. Only this goroutine sees r; restore must
// run on the same goroutine (defer restore()).
func ScopeAmbient(r *Registry) (restore func()) { return scopedReg.Set(r) }

// SetAmbientProfiler installs p as the process-wide ambient profiler and
// returns the previous one.
func SetAmbientProfiler(p *Profiler) (prev *Profiler) {
	prev = ambientProf
	ambientProf = p
	return prev
}

// AmbientProfiler returns the ambient profiler, scope-first (nil when
// profiling is off).
func AmbientProfiler() *Profiler {
	if p, ok := scopedProf.Get(); ok {
		return p
	}
	return ambientProf
}

// ScopeAmbientProfiler installs p as the calling goroutine's ambient
// profiler and returns the restore function.
func ScopeAmbientProfiler(p *Profiler) (restore func()) { return scopedProf.Set(p) }
