package metrics

// Ambient telemetry follows the same harness-state pattern as
// exps.SetChaos: experiment drivers construct machines deep inside Run
// functions with no way to thread a registry through, so the CLI (or a
// test) installs one ambiently around the run and restores the previous
// value after. The default is nil — telemetry fully off — and a nil
// ambient registry/profiler propagates as nil instrument handles, keeping
// the uninstrumented cost to one branch per site.
//
// Like the rest of the harness-state globals these are not synchronized:
// installation happens on the driving goroutine before any machine runs.

var (
	ambient     *Registry
	ambientProf *Profiler
)

// SetAmbient installs r as the ambient registry and returns the previous
// one so callers can restore it (defer metrics.SetAmbient(prev)).
func SetAmbient(r *Registry) (prev *Registry) {
	prev = ambient
	ambient = r
	return prev
}

// Ambient returns the ambient registry (nil when telemetry is off).
func Ambient() *Registry { return ambient }

// SetAmbientProfiler installs p as the ambient profiler and returns the
// previous one.
func SetAmbientProfiler(p *Profiler) (prev *Profiler) {
	prev = ambientProf
	ambientProf = p
	return prev
}

// AmbientProfiler returns the ambient profiler (nil when profiling is off).
func AmbientProfiler() *Profiler { return ambientProf }
