package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Profiler attributes wall-clock cost to simulation activity along two
// axes: per kernel event type (what kind of work is expensive) and per
// experiment phase (which part of a run is expensive). It is the one piece
// of telemetry allowed to read the host clock — strictly for attribution,
// never fed back into simulation state. A nil *Profiler is a valid no-op,
// and the kernel only touches the clock when a profiler is attached, so the
// disabled path costs a single branch per event.
type Profiler struct {
	events map[string]*lane
	phases map[string]*lane
	phase  string
	nphase int
}

type lane struct {
	n    int64
	wall time.Duration
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{events: map[string]*lane{}, phases: map[string]*lane{}}
}

// BeginPhase starts a new attribution phase. Phases are sequence-numbered
// ("03 fig4.1-seed1") so the report preserves run order even though lanes
// live in maps.
func (p *Profiler) BeginPhase(label string) {
	if p == nil {
		return
	}
	p.nphase++
	p.phase = fmt.Sprintf("%02d %s", p.nphase, label)
}

// Observe attributes d of wall-clock time to one simulated event of the
// given kind (and to the current phase).
func (p *Profiler) Observe(kind string, d time.Duration) {
	if p == nil {
		return
	}
	p.lane(p.events, kind).add(d)
	if p.phase == "" {
		p.BeginPhase("run")
	}
	p.lane(p.phases, p.phase).add(d)
}

func (p *Profiler) lane(m map[string]*lane, key string) *lane {
	l, ok := m[key]
	if !ok {
		l = &lane{}
		m[key] = l
	}
	return l
}

func (l *lane) add(d time.Duration) {
	l.n++
	l.wall += d
}

// ProfileRow is one attribution lane in a report.
type ProfileRow struct {
	Key        string  `json:"key"`
	Events     int64   `json:"events"`
	WallNS     int64   `json:"wall_ns"`
	NSPerEvent float64 `json:"ns_per_event"`
}

// ProfileReport is the exported shape of a profiler. Both tables are
// key-sorted so the JSON row order is deterministic run to run — wall
// times are host-dependent, and sorting by them would shuffle rows across
// otherwise-identical runs. ByPhase's keys carry a sequence-number prefix,
// so its key order is phase order. WriteText re-sorts a display copy of
// ByEvent by cost, where "most expensive first" is worth the instability.
type ProfileReport struct {
	ByEvent      []ProfileRow `json:"by_event"`
	ByPhase      []ProfileRow `json:"by_phase"`
	TotalEvents  int64        `json:"total_events"`
	TotalWallNS  int64        `json:"total_wall_ns"`
	EventsPerSec float64      `json:"events_per_sec"`
}

// Report aggregates the profiler into a deterministic-ordered report.
// (The wall-time values themselves are host-dependent, of course.)
func (p *Profiler) Report() ProfileReport {
	var rep ProfileReport
	if p == nil {
		return rep
	}
	rep.ByEvent = rows(p.events)
	rep.ByPhase = rows(p.phases)
	for _, l := range p.events {
		rep.TotalEvents += l.n
		rep.TotalWallNS += int64(l.wall)
	}
	if rep.TotalWallNS > 0 {
		rep.EventsPerSec = float64(rep.TotalEvents) / (float64(rep.TotalWallNS) / 1e9)
	}
	return rep
}

func rows(m map[string]*lane) []ProfileRow {
	out := make([]ProfileRow, 0, len(m))
	for key, l := range m {
		r := ProfileRow{Key: key, Events: l.n, WallNS: int64(l.wall)}
		if l.n > 0 {
			r.NSPerEvent = float64(r.WallNS) / float64(l.n)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// WriteJSON writes the report as indented JSON.
func (rep ProfileReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText writes a human-readable two-table report.
func (rep ProfileReport) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "profile: %d events, %.3f ms wall, %.0f events/sec\n",
		rep.TotalEvents, float64(rep.TotalWallNS)/1e6, rep.EventsPerSec)
	writeRows := func(title string, rs []ProfileRow) {
		if len(rs) == 0 {
			return
		}
		fmt.Fprintf(bw, "\n%-28s %12s %14s %12s\n", title, "events", "wall(ms)", "ns/event")
		for _, r := range rs {
			fmt.Fprintf(bw, "%-28s %12d %14.3f %12.1f\n",
				r.Key, r.Events, float64(r.WallNS)/1e6, r.NSPerEvent)
		}
	}
	// Humans want the expensive kinds on top; sort a copy so the report
	// value itself keeps its deterministic key order.
	byCost := append([]ProfileRow(nil), rep.ByEvent...)
	sort.Slice(byCost, func(i, j int) bool {
		if byCost[i].WallNS != byCost[j].WallNS {
			return byCost[i].WallNS > byCost[j].WallNS
		}
		return byCost[i].Key < byCost[j].Key
	})
	writeRows("by event kind", byCost)
	writeRows("by phase", rep.ByPhase)
	return bw.Flush()
}
