package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_hist", DepthBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments, got %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Flatten() != nil || r.Names() != nil || r.Total("x_total") != 0 {
		t.Fatal("nil registry exports must be empty")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var p *Profiler
	p.BeginPhase("x")
	p.Observe("e", time.Second)
	if rep := p.Report(); rep.TotalEvents != 0 {
		t.Fatal("nil profiler must report empty")
	}
}

func TestGetOrCreateSharesInstruments(t *testing.T) {
	r := New()
	a := r.Counter("hits_total")
	b := r.Counter("hits_total")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Inc()
	b.Add(2)
	if a.Value() != 3 {
		t.Fatalf("shared counter = %d, want 3", a.Value())
	}
	if h1, h2 := r.Histogram("d", DepthBuckets), r.Histogram("d", nil); h1 != h2 {
		t.Fatal("same name must return the same histogram")
	}
}

func TestCounterFamilyResolvesLabelledNames(t *testing.T) {
	r := New()
	fam := r.CounterFamily("kern_events_total", "kind", []string{"timer-fire", "tick"})
	if len(fam) != 2 {
		t.Fatalf("family length = %d, want 2", len(fam))
	}
	// The family must alias the individually resolved handles, so names stay
	// byte-identical with the pre-family formatting.
	if fam[0] != r.Counter(`kern_events_total{kind="timer-fire"}`) {
		t.Fatal(`fam[0] must be kern_events_total{kind="timer-fire"}`)
	}
	if fam[1] != r.Counter(`kern_events_total{kind="tick"}`) {
		t.Fatal(`fam[1] must be kern_events_total{kind="tick"}`)
	}
	fam[0].Inc()
	fam[1].Add(2)
	if got := r.Total("kern_events_total"); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}

	var nilReg *Registry
	nilFam := nilReg.CounterFamily("x_total", "k", []string{"a", "b", "c"})
	if len(nilFam) != 3 {
		t.Fatalf("nil-registry family length = %d, want 3", len(nilFam))
	}
	for i, c := range nilFam {
		if c != nil {
			t.Fatalf("nil-registry family[%d] must be a nil no-op handle", i)
		}
		c.Inc() // must not panic
	}
}

func TestCounterIncZeroAllocs(t *testing.T) {
	r := New()
	fam := r.CounterFamily("alloc_probe_total", "k", []string{"a", "b"})
	if avg := testing.AllocsPerRun(1000, func() {
		fam[0].Inc()
		fam[1].Add(3)
	}); avg != 0 {
		t.Fatalf("pre-resolved counter increment allocates %v/op, want 0", avg)
	}
	var nilC *Counter
	if avg := testing.AllocsPerRun(1000, func() { nilC.Inc() }); avg != 0 {
		t.Fatalf("nil counter increment allocates %v/op, want 0", avg)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two instrument kinds must panic")
		}
	}()
	r := New()
	r.Counter("x")
	r.Gauge("x")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic")
		}
	}()
	New().Counter("9bad name")
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1+10+11+100+101+5000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	s := r.Snapshot().Histograms["lat"]
	want := []BucketSnapshot{{LE: 10, Count: 2}, {LE: 100, Count: 4}}
	if len(s.Buckets) != 2 || s.Buckets[0] != want[0] || s.Buckets[1] != want[1] {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
}

func TestSplitAndSuffix(t *testing.T) {
	if b, l := SplitName(`a_total{k="v"}`); b != "a_total" || l != `{k="v"}` {
		t.Fatalf("SplitName: %q %q", b, l)
	}
	if got := Suffixed(`a{k="v"}`, "_sum"); got != `a_sum{k="v"}` {
		t.Fatalf("Suffixed: %q", got)
	}
	if got := withLabel(`a{k="v"}`, `le="1"`); got != `a{k="v",le="1"}` {
		t.Fatalf("withLabel: %q", got)
	}
	if got := withLabel("a", `le="1"`); got != `a{le="1"}` {
		t.Fatalf("withLabel bare: %q", got)
	}
}

func TestPrometheusExportDeterministicAndWellFormed(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter(`sched_out_total{reason="blocked"}`).Add(4)
		r.Counter(`sched_out_total{reason="tick"}`).Inc()
		r.Gauge("queue_depth").Set(2)
		h := r.Histogram("wake_depth", []int64{1, 4})
		h.Observe(0)
		h.Observe(3)
		h.Observe(9)
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("Prometheus export not deterministic")
	}
	out := b1.String()
	for _, want := range []string{
		"# TYPE sched_out_total counter\n",
		"sched_out_total{reason=\"blocked\"} 4\n",
		"sched_out_total{reason=\"tick\"} 1\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth 2\n",
		"# TYPE wake_depth histogram\n",
		"wake_depth_bucket{le=\"1\"} 1\n",
		"wake_depth_bucket{le=\"4\"} 2\n",
		"wake_depth_bucket{le=\"+Inf\"} 3\n",
		"wake_depth_sum 12\n",
		"wake_depth_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, and every non-comment line is "name value".
	if strings.Count(out, "# TYPE sched_out_total ") != 1 {
		t.Error("labelled variants must share one TYPE line")
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Split(line, " "); len(parts) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestJSONExportRoundTrips(t *testing.T) {
	r := New()
	r.Counter("a_total").Add(2)
	r.Histogram("h", []int64{5}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if s.Counters["a_total"] != 2 || s.Histograms["h"].Count != 1 || s.Histograms["h"].Sum != 3 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
}

func TestFlattenAndDelta(t *testing.T) {
	r := New()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(-2)
	r.Histogram(`h{k="v"}`, []int64{1}).Observe(4)
	f := r.Flatten()
	if f["c_total"] != 3 || f["g"] != -2 || f[`h_sum{k="v"}`] != 4 || f[`h_count{k="v"}`] != 1 {
		t.Fatalf("Flatten = %v", f)
	}
	before := map[string]int64{"a": 1, "b": 2, "gone": 5}
	after := map[string]int64{"a": 4, "b": 2, "new": 7}
	d := Delta(before, after)
	want := map[string]int64{"a": 3, "new": 7, "gone": -5}
	if len(d) != len(want) {
		t.Fatalf("Delta = %v, want %v", d, want)
	}
	for k, v := range want {
		if d[k] != v {
			t.Fatalf("Delta[%s] = %d, want %d", k, d[k], v)
		}
	}
	if Delta(after, after) != nil {
		t.Fatal("identical maps must yield nil delta")
	}
}

func TestTotalSumsAcrossLabels(t *testing.T) {
	r := New()
	r.Counter(`ev_total{kind="a"}`).Add(2)
	r.Counter(`ev_total{kind="b"}`).Add(3)
	r.Counter("other_total").Add(100)
	if got := r.Total("ev_total"); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
}

func TestProfilerReportOrderingAndRates(t *testing.T) {
	p := NewProfiler()
	p.BeginPhase("warmup")
	p.Observe("tick", 2*time.Microsecond)
	p.Observe("timer", 10*time.Microsecond)
	p.BeginPhase("measure")
	p.Observe("tick", 3*time.Microsecond)
	rep := p.Report()
	if rep.TotalEvents != 3 || rep.TotalWallNS != 15_000 {
		t.Fatalf("totals: %+v", rep)
	}
	if rep.EventsPerSec <= 0 {
		t.Fatal("events/sec must be positive")
	}
	if len(rep.ByEvent) != 2 || rep.ByEvent[0].Key != "tick" || rep.ByEvent[1].Key != "timer" {
		t.Fatalf("ByEvent must be key-sorted (deterministic JSON order): %+v", rep.ByEvent)
	}
	if len(rep.ByPhase) != 2 || rep.ByPhase[0].Key != "01 warmup" || rep.ByPhase[1].Key != "02 measure" {
		t.Fatalf("ByPhase must preserve run order: %+v", rep.ByPhase)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ProfileReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "by event kind") {
		t.Fatalf("text report: %s", buf.String())
	}
	// The human-facing text table shows the expensive kind first, without
	// disturbing the report value's key order.
	if strings.Index(buf.String(), "timer") > strings.Index(buf.String(), "tick") {
		t.Fatalf("text report must be cost-sorted:\n%s", buf.String())
	}
	if rep.ByEvent[0].Key != "tick" {
		t.Fatalf("WriteText must not mutate the report: %+v", rep.ByEvent)
	}
}

func TestAmbientInstallRestore(t *testing.T) {
	if Ambient() != nil || AmbientProfiler() != nil {
		t.Fatal("ambient must default to nil")
	}
	r := New()
	prev := SetAmbient(r)
	if prev != nil || Ambient() != r {
		t.Fatal("SetAmbient install failed")
	}
	if got := SetAmbient(prev); got != r {
		t.Fatal("SetAmbient must return the displaced registry")
	}
	p := NewProfiler()
	prevP := SetAmbientProfiler(p)
	if prevP != nil || AmbientProfiler() != p {
		t.Fatal("SetAmbientProfiler install failed")
	}
	SetAmbientProfiler(prevP)
	if Ambient() != nil || AmbientProfiler() != nil {
		t.Fatal("ambient not restored")
	}
}
