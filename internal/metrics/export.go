package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// BucketSnapshot is one cumulative histogram bucket: the number of
// observations ≤ LE.
type BucketSnapshot struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON shape of one histogram. Buckets are
// cumulative in ascending bound order; the implicit +Inf bucket equals
// Count.
type HistogramSnapshot struct {
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Sum     int64            `json:"sum"`
	Count   int64            `json:"count"`
}

// Snapshot is the full JSON export shape of a registry. Map keys are
// metric names; encoding/json emits them sorted, so the export is
// deterministic.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{Sum: h.sum, Count: h.n}
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: b, Count: cum})
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): a sorted `# TYPE` block per base metric name,
// histograms expanded to cumulative _bucket{le=...}/_sum/_count series.
// Output is byte-deterministic for a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	// Group metric names by base so one TYPE line covers all label
	// variants of a metric.
	type family struct {
		kind  string
		names []string
	}
	families := map[string]*family{}
	var bases []string
	for name, kind := range r.kind {
		base, _ := SplitName(name)
		f, ok := families[base]
		if !ok {
			f = &family{kind: kind}
			families[base] = f
			bases = append(bases, base)
		}
		f.names = append(f.names, name)
	}
	sort.Strings(bases)

	for _, base := range bases {
		f := families[base]
		sort.Strings(f.names)
		fmt.Fprintf(bw, "# TYPE %s %s\n", base, f.kind)
		for _, name := range f.names {
			switch f.kind {
			case "counter":
				fmt.Fprintf(bw, "%s %d\n", name, r.counters[name].v)
			case "gauge":
				fmt.Fprintf(bw, "%s %d\n", name, r.gauges[name].v)
			case "histogram":
				h := r.hists[name]
				cum := int64(0)
				for i, b := range h.bounds {
					cum += h.counts[i]
					fmt.Fprintf(bw, "%s %d\n", withLabel(Suffixed(name, "_bucket"), fmt.Sprintf("le=%q", fmt.Sprint(b))), cum)
				}
				fmt.Fprintf(bw, "%s %d\n", withLabel(Suffixed(name, "_bucket"), `le="+Inf"`), h.n)
				fmt.Fprintf(bw, "%s %d\n", Suffixed(name, "_sum"), h.sum)
				fmt.Fprintf(bw, "%s %d\n", Suffixed(name, "_count"), h.n)
			}
		}
	}
	return bw.Flush()
}
