// Package metrics is the simulation's telemetry spine: a deterministic,
// allocation-light registry of named counters, gauges and histograms that
// every layer (kern, the schedulers, the microarchitectural models, the
// attack code, campaigns) reports into.
//
// Design rules, in priority order:
//
//   - Zero-cost when disabled. A nil *Registry hands out nil instrument
//     handles, and every instrument method is a no-op on a nil receiver, so
//     an uninstrumented hot path costs exactly one predictable branch.
//   - Never feed back into the simulation. Instruments are write-only from
//     the simulation's point of view: no simulation code path may branch on
//     a metric value. Golden traces must stay byte-identical with metrics
//     on or off (repro's TestMetricsSideEffectFree enforces this).
//   - Deterministic exports. Snapshots render instruments in sorted name
//     order, so two runs with the same seed produce byte-identical
//     Prometheus text and JSON.
//
// Metric names follow the Prometheus convention, optionally carrying a
// fixed label set inline: "kern_sched_out_total{reason=\"blocked\"}".
// Instruments are get-or-create: requesting the same name twice returns the
// same instrument, which is how per-core model instances share one
// machine-wide counter.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing int64. The nil Counter is a valid
// no-op instrument.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (n must be non-negative; this is not checked on the hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable int64 level. The nil Gauge is a valid no-op
// instrument.
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add shifts the level by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v += n
	}
}

// Value returns the current level (0 for the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts int64 observations into fixed upper-bound buckets (an
// implicit +Inf bucket catches the rest). Observations are simulation
// quantities — sim-time durations in nanoseconds, queue depths, vruntime
// gaps — never wall-clock values. The nil Histogram is a valid no-op
// instrument.
type Histogram struct {
	bounds []int64 // ascending upper bounds (inclusive)
	counts []int64 // len(bounds)+1; last is +Inf
	sum    int64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Common bucket layouts.
var (
	// DurationBuckets covers sim-time durations in nanoseconds, 100ns–100ms.
	DurationBuckets = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}
	// DepthBuckets covers small occupancy counts (runqueue depths).
	DepthBuckets = []int64{0, 1, 2, 4, 8, 16, 32}
)

// Registry is one telemetry namespace. It is not safe for concurrent use:
// like the simulation kernel it serves, it assumes a single driving
// goroutine (or externally sequenced access, as the campaign runner
// provides).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	kind     map[string]string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		kind:     map[string]string{},
	}
}

// Instrumented is implemented by model components that can wire themselves
// into a registry (schedulers, caches, cores).
type Instrumented interface {
	InstrumentMetrics(*Registry)
}

// claim validates the name and records its instrument kind, panicking on a
// cross-kind collision (a programming error: two layers registered the same
// name as different instrument types).
func (r *Registry) claim(name, kind string) {
	base, _ := SplitName(name)
	if !validBase(base) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	if prev, ok := r.kind[name]; ok && prev != kind {
		panic(fmt.Sprintf("metrics: %q already registered as a %s, not a %s", name, prev, kind))
	}
	r.kind[name] = kind
}

// Counter returns (creating on first use) the named counter. A nil registry
// returns a nil, no-op instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.claim(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// CounterFamily pre-resolves one labelled counter per value of a single
// label, returned in the same order as values: fam[i] is
// base{label="values[i]"}. Hot sites resolve the family once at
// registration time and index it with an enum — no label formatting, map
// lookup or allocation per event (the kernel's per-kind event counters and
// the cache's per-level access counters work this way). A nil registry
// returns a slice of nil, no-op handles of the same length, so the
// disabled path stays indexable and zero-cost.
func (r *Registry) CounterFamily(base, label string, values []string) []*Counter {
	fam := make([]*Counter, len(values))
	if r == nil {
		return fam
	}
	for i, v := range values {
		// Hand-built name: this runs per machine construction (and per pool
		// fork), where fmt's reflection path showed up as a fifth of the
		// forked-campaign profile. Values are identifier-like, so quoting is
		// plain concatenation.
		fam[i] = r.Counter(base + "{" + label + `="` + v + `"}`)
	}
	return fam
}

// Gauge returns (creating on first use) the named gauge. A nil registry
// returns a nil, no-op instrument.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.claim(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating on first use) the named histogram with the
// given ascending upper bounds; later calls reuse the first bounds. A nil
// registry returns a nil, no-op instrument.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.claim(name, "histogram")
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.kind))
	for name := range r.kind {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Total sums every counter whose base name (labels stripped) equals base —
// e.g. Total("kern_events_total") aggregates over all event kinds.
func (r *Registry) Total(base string) int64 {
	if r == nil {
		return 0
	}
	var t int64
	for name, c := range r.counters {
		if b, _ := SplitName(name); b == base {
			t += c.v
		}
	}
	return t
}

// Flatten renders counters and gauges verbatim plus each histogram's _sum
// and _count, as a plain name→value map — the shape embedded in campaign
// manifests (Go's JSON encoder emits map keys sorted, keeping manifests
// byte-stable). A nil or empty registry returns nil.
func (r *Registry) Flatten() map[string]int64 {
	if r == nil || len(r.kind) == 0 {
		return nil
	}
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counters {
		out[name] = c.v
	}
	for name, g := range r.gauges {
		out[name] = g.v
	}
	for name, h := range r.hists {
		out[Suffixed(name, "_sum")] = h.sum
		out[Suffixed(name, "_count")] = h.n
	}
	return out
}

// Delta returns after−before per key, keeping keys present in either map
// and dropping zero deltas. Both maps are Flatten outputs.
func Delta(before, after map[string]int64) map[string]int64 {
	if len(after) == 0 && len(before) == 0 {
		return nil
	}
	out := map[string]int64{}
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	for k, v := range before {
		if _, ok := after[k]; !ok && v != 0 {
			out[k] = -v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// SplitName separates a metric name into its base and its inline label set
// (including the braces; empty when unlabelled).
func SplitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// Suffixed appends suffix to the base name, keeping the label set in place:
// Suffixed(`x_total{k="v"}`, "_sum") = `x_total_sum{k="v"}`.
func Suffixed(name, suffix string) string {
	base, labels := SplitName(name)
	return base + suffix + labels
}

// withLabel merges one extra label into the name's label set.
func withLabel(name, label string) string {
	base, labels := SplitName(name)
	if labels == "" {
		return base + "{" + label + "}"
	}
	return base + "{" + labels[1:len(labels)-1] + "," + label + "}"
}

// validBase checks a Prometheus-compatible base metric name.
func validBase(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
