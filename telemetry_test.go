package repro

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestMetricsSideEffectFree is the determinism contract: running an
// experiment with the full telemetry stack installed (ambient registry and
// sim-time profiler) must produce a kernel event stream and rendered result
// bit-identical to an uninstrumented run. Telemetry observes, never steers.
func TestMetricsSideEffectFree(t *testing.T) {
	o := Options{Scale: Quick, Seed: 1}
	_, plain, err := RunTraced("fig4.1", o, 0)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	prof := metrics.NewProfiler()
	prevReg := metrics.SetAmbient(reg)
	prevProf := metrics.SetAmbientProfiler(prof)
	_, instrumented, err := RunTraced("fig4.1", o, 0)
	metrics.SetAmbient(prevReg)
	metrics.SetAmbientProfiler(prevProf)
	if err != nil {
		t.Fatal(err)
	}

	if d := trace.Diff(instrumented, plain); d != nil {
		t.Fatalf("telemetry perturbed the schedule:\n%s", d)
	}
	if reg.Total("kern_events_total") == 0 {
		t.Fatal("instrumented run recorded no kernel events")
	}
	if rep := prof.Report(); rep.TotalEvents == 0 {
		t.Fatal("profiler attributed no events")
	}
}

// TestRunInstrumentedAndProfiled the convenience wrappers install and
// restore the ambient state and hand back populated collectors.
func TestRunInstrumentedAndProfiled(t *testing.T) {
	if metrics.Ambient() != nil {
		t.Fatal("ambient registry leaked into the test")
	}
	_, reg, err := RunInstrumented("fig4.1", Options{Scale: Quick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Ambient() != nil {
		t.Fatal("RunInstrumented leaked its registry")
	}
	for _, base := range []string{"kern_events_total", "kern_sched_out_total", "attack_preemptions_total"} {
		if reg.Total(base) == 0 {
			t.Errorf("metric %s is zero after fig4.1", base)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE kern_events_total counter") {
		t.Fatalf("Prometheus export missing kern_events_total family:\n%s", buf.String())
	}

	_, prof, err := RunProfiled("fig4.1", Options{Scale: Quick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.AmbientProfiler() != nil {
		t.Fatal("RunProfiled leaked its profiler")
	}
	rep := prof.Report()
	if rep.TotalEvents == 0 || len(rep.ByEvent) == 0 || len(rep.ByPhase) == 0 {
		t.Fatalf("profiler report empty: %+v", rep)
	}
}
