package main

import (
	"testing"

	"repro"
)

func TestOptions(t *testing.T) {
	o := options(false, 7)
	if o.Scale != repro.Quick || o.Seed != 7 {
		t.Fatalf("options = %+v", o)
	}
	if o = options(true, 1); o.Scale != repro.Paper {
		t.Fatalf("paper scale not selected")
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("fig0.0", repro.Options{}, false); err == nil {
		t.Fatal("want error for unknown id")
	}
}

func TestRunOneRendersAndJSON(t *testing.T) {
	if err := runOne("tab2.1", repro.Options{Seed: 1}, false); err != nil {
		t.Fatal(err)
	}
	if err := runOne("tab2.1", repro.Options{Seed: 1}, true); err != nil {
		t.Fatal(err)
	}
}
