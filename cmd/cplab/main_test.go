package main

import (
	"strings"
	"testing"

	"repro"
)

func TestOptions(t *testing.T) {
	o := options(false, 7, 0)
	if o.Scale != repro.Quick || o.Seed != 7 || o.FaultRate != 0 {
		t.Fatalf("options = %+v", o)
	}
	if o = options(true, 1, 0.05); o.Scale != repro.Paper || o.FaultRate != 0.05 {
		t.Fatalf("paper scale or fault rate not selected: %+v", o)
	}
}

func TestRunOneUnknown(t *testing.T) {
	if err := runOne("fig0.0", repro.Options{}, false); err == nil {
		t.Fatal("want error for unknown id")
	}
}

func TestRunOneUnknownSuggests(t *testing.T) {
	err := runOne("fig4.3x", repro.Options{}, false)
	if err == nil {
		t.Fatal("want error for unknown id")
	}
	if !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("no suggestion in %q", err)
	}
}

func TestRunOneRendersAndJSON(t *testing.T) {
	if err := runOne("tab2.1", repro.Options{Seed: 1}, false); err != nil {
		t.Fatal(err)
	}
	if err := runOne("tab2.1", repro.Options{Seed: 1}, true); err != nil {
		t.Fatal(err)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"fig4.3a", "fig4.3a", 0},
		{"fig4.3x", "fig4.3a", 1},
		{"chaso", "chaos", 2},
		{"abc", "", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSuggest(t *testing.T) {
	if s := suggest("fig4.3x"); !strings.HasPrefix(s, "fig4.3") {
		t.Fatalf("suggest(fig4.3x) = %q", s)
	}
	if s := suggest("zzzzzzzzzzzz"); s != "" {
		t.Fatalf("suggest(garbage) = %q, want none", s)
	}
}

func TestRunGuardedUnknown(t *testing.T) {
	rep := repro.RunGuarded("fig0.0", repro.Options{}, 1)
	if rep.Err == nil || rep.Result != nil {
		t.Fatalf("guarded unknown id: %+v", rep)
	}
}

func TestRunGuardedSucceeds(t *testing.T) {
	rep := repro.RunGuarded("tab2.1", repro.Options{Seed: 1}, 1)
	if rep.Err != nil || rep.Result == nil {
		t.Fatalf("guarded tab2.1: %+v", rep)
	}
	if rep.Attempts != 1 || rep.Degraded {
		t.Fatalf("clean run retried: %+v", rep)
	}
}
