package main

// fsck.go is the state-dir doctor: `cplab fsck [-repair] <path|dir>...`
// validates every campaign store it finds (manifest + .prev generation +
// .wal journal), lists orphaned *.tmp litter and quarantined wreckage,
// and with -repair rewrites each damaged store from its best surviving
// source through the same recovery path `cplab resume` uses — so an
// operator can check (and fix) a state directory without running
// anything. Exit 0 when everything is clean (or was repaired), 1 when
// problems remain, 2 on usage errors.

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/durable"
)

// fsckCmd scans (and optionally repairs) campaign state on disk.
func fsckCmd(args []string) int {
	flags := flag.NewFlagSet("fsck", flag.ExitOnError)
	repair := flags.Bool("repair", false, "rewrite damaged stores from their best surviving source and sweep orphaned *.tmp files")
	flags.Parse(args)
	if flags.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "cplab fsck [-repair] <manifest|dir>...")
		return exitUsage
	}

	stores, tmps, quarantined, scanErrs := discoverState(flags.Args())
	problems := 0
	for _, e := range scanErrs {
		fmt.Fprintln(os.Stderr, "cplab: fsck:", e)
		problems++
	}

	for _, path := range stores {
		h := campaign.Inspect(durable.OS(), path)
		issues := storeIssues(h)
		if len(issues) == 0 {
			fmt.Printf("ok       %s (%d records, complete=%t)\n", path, h.BestRecords, h.Complete)
			continue
		}
		if !*repair {
			problems++
			fmt.Printf("DAMAGED  %s: %s\n", path, strings.Join(issues, "; "))
			continue
		}
		if _, hh, err := campaign.Repair(durable.OS(), path); err != nil {
			problems++
			fmt.Printf("FAILED   %s: repair: %v\n", path, err)
			continue
		} else if q := quarantines(hh); len(q) > 0 {
			fmt.Fprintf(os.Stderr, "cplab: fsck: %s: quarantined %s\n", path, strings.Join(q, ", "))
		}
		// Re-inspect: repair must leave nothing to complain about.
		if after := storeIssues(campaign.Inspect(durable.OS(), path)); len(after) > 0 {
			problems++
			fmt.Printf("FAILED   %s: still damaged after repair: %s\n", path, strings.Join(after, "; "))
			continue
		}
		fmt.Printf("repaired %s (was: %s)\n", path, strings.Join(issues, "; "))
	}

	for _, tmp := range tmps {
		if !*repair {
			problems++
			fmt.Printf("ORPHAN   %s (interrupted atomic write; -repair removes)\n", tmp)
			continue
		}
		// Already gone is fine: repairing a store sweeps its own tmps.
		if err := os.Remove(tmp); err != nil && !errors.Is(err, fs.ErrNotExist) {
			problems++
			fmt.Printf("FAILED   %s: %v\n", tmp, err)
			continue
		}
		fmt.Printf("swept    %s\n", tmp)
	}

	// Quarantined wreckage is informational: the bytes are preserved for
	// post-mortems and deleting them is the operator's call, not fsck's.
	for _, q := range quarantined {
		fmt.Printf("note     %s (quarantined wreckage, delete when done)\n", q)
	}

	if problems > 0 {
		fmt.Fprintf(os.Stderr, "cplab: fsck: %d problem(s)\n", problems)
		return exitDegraded
	}
	return exitOK
}

// discoverState expands the operator's targets into campaign store paths,
// orphaned *.tmp files and quarantined wreckage. A directory is walked; a
// file names its store directly (a .wal or .prev path means its parent
// manifest).
func discoverState(targets []string) (stores, tmps, quarantined []string, errs []error) {
	seen := map[string]bool{}
	addStore := func(path string) {
		if !seen[path] {
			seen[path] = true
			stores = append(stores, path)
		}
	}
	for _, target := range targets {
		info, err := os.Stat(target)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if !info.IsDir() {
			addStore(storeOf(target))
			continue
		}
		walkErr := filepath.WalkDir(target, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			name := d.Name()
			switch {
			case strings.HasSuffix(name, durable.TmpSuffix):
				tmps = append(tmps, path)
			case strings.Contains(name, durable.QuarantineSuffix):
				quarantined = append(quarantined, path)
			case strings.HasSuffix(name, campaign.WALSuffix):
				// The journal anchors a store even when the manifest itself
				// was destroyed — that is the exact case recovery exists for.
				addStore(strings.TrimSuffix(path, campaign.WALSuffix))
			case strings.HasSuffix(name, durable.PrevSuffix):
				addStore(strings.TrimSuffix(path, durable.PrevSuffix))
			case strings.HasSuffix(name, ".json") && name != "state.json":
				// Only treat a bare .json as a store when it is (or claims to
				// be) a campaign manifest; labd job state and telemetry dumps
				// are not campaign stores.
				if looksLikeManifest(path) {
					addStore(path)
				}
			}
			return nil
		})
		if walkErr != nil {
			errs = append(errs, walkErr)
		}
	}
	sort.Strings(stores)
	sort.Strings(tmps)
	sort.Strings(quarantined)
	return stores, tmps, quarantined, errs
}

// storeOf maps any member of a store's file set to its manifest path.
func storeOf(path string) string {
	switch {
	case strings.HasSuffix(path, campaign.WALSuffix):
		return strings.TrimSuffix(path, campaign.WALSuffix)
	case strings.HasSuffix(path, durable.PrevSuffix):
		return strings.TrimSuffix(path, durable.PrevSuffix)
	}
	return path
}

// looksLikeManifest reports whether the file is plausibly a campaign
// manifest: valid outright, or damaged-but-with-recovery-siblings. A
// .json with neither siblings nor manifest shape is someone else's file.
func looksLikeManifest(path string) bool {
	if _, err := os.Stat(campaign.WALPath(path)); err == nil {
		return true
	}
	if _, err := os.Stat(path + durable.PrevSuffix); err == nil {
		return true
	}
	_, err := campaign.Load(path)
	var ce *durable.CorruptError
	switch {
	case err == nil:
		return true
	case errors.As(err, &ce):
		// Unreadable as a manifest and nothing to recover from — do not
		// claim it unless its wreckage mentions the manifest fields.
		data, rerr := os.ReadFile(path)
		return rerr == nil && strings.Contains(string(data), `"entries"`) && strings.Contains(string(data), `"ids"`)
	}
	return false
}

// storeIssues folds a Health into operator-readable problem strings;
// empty means the store is clean.
func storeIssues(h *campaign.Health) []string {
	var issues []string
	src := func(name string, s campaign.SourceHealth, primary bool) {
		switch {
		case !s.Present:
			if primary {
				issues = append(issues, name+" missing")
			}
		case s.Torn:
			issues = append(issues, fmt.Sprintf("%s torn after %d records (%s)", name, s.Records, s.Err))
		case !s.OK:
			issues = append(issues, fmt.Sprintf("%s corrupt (%s)", name, s.Err))
		}
	}
	src("manifest", h.Manifest, true)
	src("journal", h.WAL, false)
	src("prev generation", h.Prev, false)
	if h.Best == "" {
		issues = append(issues, "no usable source — unrecoverable without backups")
	} else if h.Best != "manifest" {
		issues = append(issues, fmt.Sprintf("best source is %s with %d records", h.Best, h.BestRecords))
	} else if h.Manifest.OK && h.WAL.OK && !h.WAL.Torn && h.WAL.Records > h.Manifest.Records {
		issues = append(issues, fmt.Sprintf("journal ahead of manifest (%d > %d records)", h.WAL.Records, h.Manifest.Records))
	}
	return issues
}

// quarantines lists where LoadRecovered moved wreckage during a repair.
func quarantines(h *campaign.Health) []string {
	var q []string
	for _, s := range []campaign.SourceHealth{h.Manifest, h.Prev, h.WAL} {
		if s.Quarantined != "" {
			q = append(q, s.Quarantined)
		}
	}
	return q
}
