package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/durable"
	"repro/internal/report"
)

// matrixCmd runs the attack-vs-defense efficacy grid as a checkpointed
// campaign: one entry per cell, so the sweep shards across workers, halts
// resumably, and survives crashes through the same durable manifest path the
// experiment campaigns use. On completion it renders one grid per headline
// metric — success rate, amplification, benign overhead — assembled purely
// from the manifest, so stdout is byte-identical at any -parallel width and
// across halt/resume.
func matrixCmd(args []string) int {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	cf := addCommon(fs)
	manifest := fs.String("manifest", "matrix.json", "checkpoint manifest path")
	attacksCSV := fs.String("attacks", "", "comma-separated attack subset (default: all, in canonical order)")
	defensesCSV := fs.String("defenses", "", "comma-separated defense-preset subset (default: all, \"off\" first)")
	retries := fs.Int("retries", 2, "guarded bumped-seed retries per cell")
	expWall := fs.Duration("expwall", 0, "wall-clock budget per cell (0 = unbounded)")
	wall := fs.Duration("wall", 0, "wall-clock budget for this session; halts resumable (0 = unbounded)")
	haltAfter := fs.Int("haltafter", 0, "halt (resumable) after N cells this session (0 = off)")
	parallel := fs.Int("parallel", 1, "grid workers (manifest and report are byte-identical at any width)")
	force := fs.Bool("force", false, "discard an existing manifest and start over")
	fs.Parse(args)
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	if *retries < 0 {
		fmt.Fprintf(os.Stderr, "cplab: -retries %d is negative\n", *retries)
		return exitUsage
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "cplab: -parallel %d is not positive\n", *parallel)
		return exitUsage
	}
	attacks, err := matrixAxis(*attacksCSV, repro.MatrixAttacks(), "-attacks")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	defenses, err := matrixAxis(*defensesCSV, repro.MatrixDefenses(), "-defenses")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	stop, err := cf.startSpans("cplab")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	defer stop()

	var ids []string
	for _, a := range attacks {
		for _, d := range defenses {
			ids = append(ids, repro.MatrixID(a, d))
		}
	}
	entries := repro.CampaignEntries(ids, o, *retries)
	cfg := campaign.Config{
		Path: *manifest,
		Seed: *cf.seed,
		// The note pins the grid shape and every result-shaping flag, so a
		// resume under a different grid or options is refused.
		Note: fmt.Sprintf("matrix attacks=%s defenses=%s paper=%t faults=%g simbudget=%s retries=%d",
			strings.Join(attacks, ","), strings.Join(defenses, ","),
			*cf.paper, *cf.faults, o.SimBudget, *retries),
		ExpWall:   *expWall,
		HaltAfter: *haltAfter,
		Log:       os.Stderr,
	}
	if *wall > 0 {
		cfg.Deadline = time.Now().Add(*wall)
	}

	exists := false
	for _, p := range []string{*manifest, campaign.WALPath(*manifest), *manifest + durable.PrevSuffix} {
		if _, statErr := os.Stat(p); statErr == nil {
			exists = true
			break
		}
	}
	var c *campaign.Campaign
	if exists && !*force {
		fmt.Fprintf(os.Stderr, "cplab: manifest %s exists — resuming (use -force to start over)\n", *manifest)
		c, err = campaign.Resume(cfg, entries)
	} else {
		c, err = campaign.New(cfg, entries)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}

	man, runErr := c.RunParallel(context.Background(), *parallel)
	fmt.Fprintln(os.Stderr, "===== matrix summary =====")
	fmt.Fprint(os.Stderr, report.CampaignSummary(man.Rows()))
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "cplab:", runErr)
		if errors.Is(runErr, campaign.ErrHalted) {
			return exitHalted
		}
		return exitDegraded
	}

	if *cf.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(man); err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
	} else {
		printMatrixReport(man, attacks, defenses)
	}
	if !man.Clean() {
		return exitDegraded
	}
	return exitOK
}

// matrixAxis parses a CSV axis subset against the known values, defaulting
// to all of them (in canonical order) when empty.
func matrixAxis(csv string, known []string, flagName string) ([]string, error) {
	if csv == "" {
		return known, nil
	}
	var out []string
	for _, v := range strings.Split(csv, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		found := false
		for _, k := range known {
			if v == k {
				found = true
				break
			}
		}
		if !found {
			if s := suggestFrom(v, known); s != "" {
				return nil, fmt.Errorf("%s: unknown value %q (did you mean %q? known: %s)",
					flagName, v, s, strings.Join(known, ", "))
			}
			return nil, fmt.Errorf("%s: unknown value %q (known: %s)", flagName, v, strings.Join(known, ", "))
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return known, nil
	}
	return out, nil
}

// printMatrixReport renders the efficacy grids from the manifest, in plan
// order: attacks as rows, defenses as columns, one grid per headline metric.
// Cells that failed or never ran render as "-".
func printMatrixReport(man *campaign.Manifest, attacks, defenses []string) {
	metricCell := func(metric, format string, percent bool) func(r, c int) string {
		return func(r, c int) string {
			rec := man.Entries[repro.MatrixID(attacks[r], defenses[c])]
			if rec == nil || rec.Status == campaign.StatusFailed || rec.Status == campaign.StatusSkipped {
				return ""
			}
			v, ok := rec.Metrics[metric]
			if !ok {
				return ""
			}
			if percent {
				v *= 100
			}
			return fmt.Sprintf(format, v)
		}
	}
	fmt.Println("===== defense matrix — attack success rate =====")
	fmt.Print(report.Matrix(`attack\defense`, attacks, defenses, metricCell("success_rate", "%.1f%%", true)))
	fmt.Println()
	fmt.Println("===== defense matrix — residual amplification =====")
	fmt.Print(report.Matrix(`attack\defense`, attacks, defenses, metricCell("amplification", "%.2f", false)))
	fmt.Println()
	fmt.Println("===== defense matrix — benign overhead =====")
	fmt.Print(report.Matrix(`attack\defense`, attacks, defenses, metricCell("overhead", "%.1f%%", true)))
}
