package main

// spans.go wires the span layer into the CLI: every experiment-running
// subcommand accepts -spans <path> (plus -spanslices for per-event
// scheduler slices), installing a process-ambient tracing context around
// the run. Tracing is observation only — stdout, golden traces and
// manifests are byte-identical with it on or off.

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

// startSpans opens the span log named by -spans and installs the ambient
// tracing context. The returned stop function restores the previous
// context, flushes and reports; it is a no-op closure when -spans is off.
func (c *commonFlags) startSpans(proc string) (stop func(), err error) {
	// The trace ID is seed-derived, not clock-derived, so reruns of the
	// same configuration stitch under the same trace.
	return c.startSpansAs(proc, fmt.Sprintf("%s-seed%d", proc, *c.seed))
}

// startSpansAs is startSpans with an explicit trace ID — the cluster
// coordinator uses a "cluster-seed<N>" trace so worker job spans adopting
// it via the propagation headers stitch under one timeline.
func (c *commonFlags) startSpansAs(proc, trace string) (stop func(), err error) {
	if *c.spans == "" {
		return func() {}, nil
	}
	tr, err := obs.New(obs.Config{
		Proc:     proc,
		Trace:    trace,
		Path:     *c.spans,
		Truncate: true,
	})
	if err != nil {
		return nil, err
	}
	prev := obs.SetAmbient(&obs.Ctx{Tracer: tr, Slices: *c.spanslices})
	return func() {
		obs.SetAmbient(prev)
		if cerr := tr.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "cplab: spans:", cerr)
			return
		}
		fmt.Fprintf(os.Stderr, "cplab: spans: wrote %d spans to %s\n", tr.Spans(), *c.spans)
	}, nil
}
