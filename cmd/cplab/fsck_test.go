package main

// fsck_test.go drives the state-dir doctor end to end: build a real
// campaign store with the CLI, wreck it, and check fsck reports the
// damage, -repair restores it, and -diskchaos halts resumably (exit 3)
// instead of corrupting anything.

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/durable"
)

// buildCLIStore runs a short campaign and returns the manifest path plus
// its pristine bytes.
func buildCLIStore(t *testing.T, dir string) (string, []byte) {
	t.Helper()
	man := filepath.Join(dir, "m.json")
	capture(t, func() {
		if code := run([]string{"campaign", "-manifest", man, "-ids", "tab2.1,fig4.1", "-seed", "3"}); code != exitOK {
			t.Errorf("campaign exit %d", code)
		}
	})
	data, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	return man, data
}

func TestFsckCleanStore(t *testing.T) {
	dir := t.TempDir()
	buildCLIStore(t, dir)
	out := capture(t, func() {
		if code := run([]string{"fsck", dir}); code != exitOK {
			t.Errorf("fsck on clean store exit %d", code)
		}
	})
	if !strings.Contains(out, "ok") || strings.Contains(out, "DAMAGED") {
		t.Fatalf("unexpected fsck report:\n%s", out)
	}
}

func TestFsckDetectsAndRepairs(t *testing.T) {
	dir := t.TempDir()
	man, pristine := buildCLIStore(t, dir)

	// Wreck the manifest and drop tmp litter.
	if err := os.WriteFile(man, append([]byte("GARBAGE"), pristine[:len(pristine)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	litter := filepath.Join(dir, "m.json.tmp")
	if err := os.WriteFile(litter, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}

	out := capture(t, func() {
		if code := run([]string{"fsck", dir}); code != exitDegraded {
			t.Errorf("fsck on damaged store exit %d, want %d", code, exitDegraded)
		}
	})
	if !strings.Contains(out, "DAMAGED") || !strings.Contains(out, "ORPHAN") {
		t.Fatalf("fsck missed the damage:\n%s", out)
	}

	out = capture(t, func() {
		if code := run([]string{"fsck", "-repair", dir}); code != exitOK {
			t.Errorf("fsck -repair exit %d", code)
		}
	})
	if !strings.Contains(out, "repaired") || !strings.Contains(out, "swept") {
		t.Fatalf("fsck -repair report suspicious:\n%s", out)
	}
	if _, err := os.Stat(litter); err == nil {
		t.Fatal("orphan tmp survived -repair")
	}

	// The repaired store must be exactly the pristine one.
	got, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(pristine) {
		t.Fatalf("repaired manifest differs from pristine")
	}
	out = capture(t, func() {
		if code := run([]string{"fsck", man}); code != exitOK {
			t.Errorf("fsck after repair exit %d", code)
		}
	})
	if strings.Contains(out, "DAMAGED") {
		t.Fatalf("store still damaged after repair:\n%s", out)
	}
}

func TestFsckManifestDestroyedJournalSurvives(t *testing.T) {
	dir := t.TempDir()
	man, pristine := buildCLIStore(t, dir)
	if err := os.Remove(man); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"fsck", "-repair", dir}); code != exitOK {
		t.Fatalf("fsck -repair with only the journal exit %d", code)
	}
	got, err := os.ReadFile(man)
	if err != nil {
		t.Fatalf("manifest not rebuilt: %v", err)
	}
	if string(got) != string(pristine) {
		t.Fatal("rebuilt manifest differs from pristine")
	}
}

func TestFsckIgnoresForeignJSON(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "telemetry.json")
	if err := os.WriteFile(foreign, []byte(`{"events": 12}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() {
		if code := run([]string{"fsck", dir}); code != exitOK {
			t.Errorf("fsck over foreign json exit %d", code)
		}
	})
	if strings.Contains(out, "telemetry.json") {
		t.Fatalf("fsck claimed a foreign json file:\n%s", out)
	}
}

// TestCampaignDiskChaosHaltsResumable: under heavy injected disk faults
// the campaign must exit 3 (halted, resumable) — never corrupt state —
// and a fault-free resume must converge to the reference bytes.
func TestCampaignDiskChaosHaltsResumable(t *testing.T) {
	dir := t.TempDir()
	refMan, _ := buildCLIStore(t, dir)

	chaosMan := filepath.Join(dir, "chaos.json")
	halted := false
	for seed := 1; seed <= 10 && !halted; seed++ {
		var code int
		capture(t, func() {
			code = run([]string{
				"campaign", "-manifest", chaosMan, "-ids", "tab2.1,fig4.1", "-seed", "3",
				"-diskchaos", "0.4", "-diskchaosseed", strconv.Itoa(seed), "-force",
			})
		})
		switch code {
		case exitHalted:
			halted = true
		case exitOK:
			// Lucky dice — try the next chaos seed.
			os.Remove(chaosMan)
			os.Remove(campaign.WALPath(chaosMan))
			os.Remove(chaosMan + durable.PrevSuffix)
		default:
			t.Fatalf("disk chaos surfaced as exit %d, want %d or %d", code, exitHalted, exitOK)
		}
	}
	if !halted {
		t.Fatal("-diskchaos 0.4 never halted across 10 seeds — injection inert")
	}

	capture(t, func() {
		if code := run([]string{"resume", "-manifest", chaosMan, "-ids", "tab2.1,fig4.1", "-seed", "3"}); code != exitOK {
			t.Errorf("resume after disk chaos exit %d", code)
		}
	})
	got, err := os.ReadFile(chaosMan)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refMan)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(refBytes) {
		t.Fatal("post-chaos resumed manifest differs from reference")
	}
}
