package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/durable"
	"repro/internal/exps"
	"repro/internal/metrics"
)

// metricsCmd runs one experiment with a fresh telemetry registry installed
// and exports the populated registry as Prometheus text (default) or JSON.
func metricsCmd(args []string) int {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	cf := addCommon(fs)
	exp := fs.String("exp", "", "experiment ID to instrument (required)")
	out := fs.String("o", "", "write the export to this file instead of stdout")
	fs.Parse(args)
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "cplab metrics -exp <id> [-json] [-o path] [flags]")
		return exitUsage
	}
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	start := time.Now()
	_, reg, err := repro.RunInstrumented(*exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", *exp, time.Since(start).Round(time.Millisecond))
	var buf bytes.Buffer
	if *cf.asJSON {
		err = reg.WriteJSON(&buf)
	} else {
		err = reg.WritePrometheus(&buf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	return emit(*out, buf.Bytes())
}

// profileCmd runs one experiment with a fresh sim-time profiler installed
// and reports wall-clock cost by kernel event kind and experiment phase.
func profileCmd(args []string) int {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	cf := addCommon(fs)
	exp := fs.String("exp", "", "experiment ID to profile (required)")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Parse(args)
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "cplab profile -exp <id> [-json] [-o path] [flags]")
		return exitUsage
	}
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	start := time.Now()
	_, prof, err := repro.RunProfiled(*exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", *exp, time.Since(start).Round(time.Millisecond))
	rep := prof.Report()
	var buf bytes.Buffer
	if *cf.asJSON {
		err = rep.WriteJSON(&buf)
	} else {
		err = rep.WriteText(&buf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	return emit(*out, buf.Bytes())
}

// benchIDs are the experiments the benchmark harness times individually;
// benchCampaignIDs is the small sweep that exercises the campaign path
// (checkpointing, containment, record building) end to end.
var (
	benchIDs         = []string{"fig4.1"}
	benchCampaignIDs = []string{"tab2.1", "fig4.1"}
)

// benchCampaignReps replicates the campaign sweep under suffixed entry IDs
// so the timed plan is long enough (~16 entries) for entries/sec to be a
// throughput measurement rather than a coin flip on a couple of
// milliseconds of wall time.
const benchCampaignReps = 8

// benchBootReps is the number of machine boots the boot-fresh and boot-fork
// rows each time. On boot rows SimEvents counts boots, so NSPerEvent reads
// as ns/boot and EventsPerSec as boots/sec.
const benchBootReps = 64

// benchMicroEntries is the size of the in-memory micro campaign plan the
// pool-micro rows time. Each entry is a few hundred microseconds of
// simulation, so entries/sec on these rows measures per-entry machinery —
// machine acquisition (pool fork vs cold boot), containment, telemetry —
// rather than simulation volume.
const benchMicroEntries = 2000

// benchResult is one benchmark row of the bench artifact (BENCH_PR10.json
// by default).
type benchResult struct {
	Name         string  `json:"name"`
	WallNS       int64   `json:"wall_ns"`
	SimEvents    int64   `json:"sim_events"`
	NSPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Workers and EntriesPerSec are set on campaign rows: the pool width
	// and the plan-entry throughput at that width.
	Workers       int     `json:"workers,omitempty"`
	EntriesPerSec float64 `json:"entries_per_sec,omitempty"`
}

// benchFile is the whole artifact.
type benchFile struct {
	Seed       uint64        `json:"seed"`
	Paper      bool          `json:"paper"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchWidths are the campaign pool widths the harness times: serial, two
// workers, and the machine's full width (deduplicated, in order, and capped
// at GOMAXPROCS). Widths beyond the machine's width are excluded: with one
// CPU, a second CPU-bound worker can only time-slice the same core, so the
// row would measure pool overhead and cache thrash, not scaling. (The
// campaign engine itself accepts any width at any GOMAXPROCS — manifests
// are byte-identical regardless — this cap is only about what is worth
// timing.)
func benchWidths() []int {
	limit := runtime.GOMAXPROCS(0)
	var out []int
	for _, w := range []int{1, 2, limit} {
		if w > limit {
			continue
		}
		if len(out) == 0 || out[len(out)-1] < w {
			out = append(out, w)
		}
	}
	return out
}

// benchInvariantStride is the relaxed invariant-scan cadence benchmarks run
// at. Invariant scans are pure checking — results are bit-identical at any
// stride — so the bench measures the simulator, not the checker.
const benchInvariantStride = 65536

// benchCmd times the simulator end to end — each benchIDs experiment,
// machine boot (cold versus pool fork), a small checkpointed campaign at
// several pool widths, and an in-memory micro campaign that isolates
// per-entry overhead — counting simulated kernel events through per-run
// telemetry, and writes ns/sim-event, events/sec and entries/sec rows to
// BENCH_PR10.json. Each row is the best
// of -reps attempts with a forced GC between them, so one badly-timed
// collection cannot masquerade as a regression. With -compare, the new rows
// are diffed against a previous artifact and a >10% regression on any row
// fails the command.
func benchCmd(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	cf := addCommon(fs)
	out := fs.String("o", "BENCH_PR10.json", "output path (- for stdout)")
	compare := fs.String("compare", "", "previous bench artifact to diff against (exit 1 on >10% regression)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU pprof profile of the benchmark runs to this file")
	reps := fs.Int("reps", 3, "attempts per row; the best (lowest wall time) is kept")
	fs.Parse(args)
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	o.InvariantStride = benchInvariantStride
	if *reps < 1 {
		*reps = 1
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
		defer pprof.StopCPUProfile()
	}
	file := benchFile{Seed: *cf.seed, Paper: *cf.paper}
	for _, id := range benchIDs {
		row, err := bestOf(*reps, func() (benchResult, error) { return benchExp(id, o) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
		file.Benchmarks = append(file.Benchmarks, row)
		logBenchRow(row)
	}
	// Boot rows: the same machine acquisition path, cold (full construction
	// and teardown) versus forked from a pooled pristine snapshot. The
	// fork/cold ratio is the machine pool's headline speedup.
	for _, boot := range []func(uint64) (benchResult, error){benchBootFresh, benchBootFork} {
		boot := boot
		row, err := bestOf(*reps, func() (benchResult, error) { return boot(*cf.seed) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
		file.Benchmarks = append(file.Benchmarks, row)
		logBenchRow(row)
	}
	// Campaign widths are swept together inside each attempt — width 1, then
	// 2, then full — rather than exhausting one width's attempts before the
	// next starts. Machine noise drifts over seconds; interleaving makes
	// every width sample the same noise windows, so the per-width best
	// measures pool scaling instead of which width drew the quiet interval.
	// The micro campaign rides the same sweep for the same reason.
	widths := benchWidths()
	best := make([]benchResult, len(widths))
	bestMicro := make([]benchResult, len(widths))
	for rep := 0; rep < *reps; rep++ {
		for i, workers := range widths {
			runtime.GC()
			row, err := benchCampaign(o, *cf.seed, workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cplab:", err)
				return exitDegraded
			}
			if rep == 0 || row.WallNS < best[i].WallNS {
				best[i] = row
			}
			runtime.GC()
			row, err = benchMicro(*cf.seed, workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cplab:", err)
				return exitDegraded
			}
			if rep == 0 || row.WallNS < bestMicro[i].WallNS {
				bestMicro[i] = row
			}
		}
	}
	for _, rows := range [][]benchResult{best, bestMicro} {
		for _, row := range rows {
			file.Benchmarks = append(file.Benchmarks, row)
			logBenchRow(row)
		}
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	if code := emit(*out, append(data, '\n')); code != exitOK {
		return code
	}
	if *compare != "" {
		return benchCompare(*compare, file)
	}
	return exitOK
}

// bestOf runs f reps times with a forced GC before each attempt and keeps
// the attempt with the lowest wall time. GC between attempts means each
// starts from the same heap state, so campaign throughput at different pool
// widths is compared on equal footing rather than on whichever width
// happened to inherit the previous row's garbage.
func bestOf(reps int, f func() (benchResult, error)) (benchResult, error) {
	var best benchResult
	for i := 0; i < reps; i++ {
		runtime.GC()
		row, err := f()
		if err != nil {
			return benchResult{}, err
		}
		if i == 0 || row.WallNS < best.WallNS {
			best = row
		}
	}
	return best, nil
}

// benchRegressionPct is the relative slowdown past which a compare fails.
const benchRegressionPct = 10.0

// benchCompare diffs the fresh rows against a previous artifact, printing a
// per-row delta line for every metric that matters (ns/sim-event always;
// entries/sec on campaign rows), and returns exit 1 when any row regressed
// by more than benchRegressionPct.
func benchCompare(oldPath string, fresh benchFile) int {
	data, err := os.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	var old benchFile
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "cplab: %s: %v\n", oldPath, err)
		return exitDegraded
	}
	prev := make(map[string]benchResult, len(old.Benchmarks))
	for _, row := range old.Benchmarks {
		prev[row.Name] = row
	}
	regressed := false
	for _, row := range fresh.Benchmarks {
		was, ok := prev[row.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "cplab: compare %-12s (new row, no baseline)\n", row.Name)
			continue
		}
		// ns/sim-event: lower is better.
		if was.NSPerEvent > 0 && row.NSPerEvent > 0 {
			pct := (row.NSPerEvent - was.NSPerEvent) / was.NSPerEvent * 100
			verdict := benchVerdict(pct)
			regressed = regressed || pct > benchRegressionPct
			fmt.Fprintf(os.Stderr, "cplab: compare %-12s %8.1f -> %8.1f ns/event  %+7.1f%%  %s\n",
				row.Name, was.NSPerEvent, row.NSPerEvent, pct, verdict)
		}
		// entries/sec (campaign rows): higher is better, so a drop is the
		// regression direction.
		if was.EntriesPerSec > 0 && row.EntriesPerSec > 0 {
			pct := (was.EntriesPerSec - row.EntriesPerSec) / was.EntriesPerSec * 100
			verdict := benchVerdict(pct)
			regressed = regressed || pct > benchRegressionPct
			fmt.Fprintf(os.Stderr, "cplab: compare %-12s %8.2f -> %8.2f entries/s %+7.1f%%  %s\n",
				row.Name, was.EntriesPerSec, row.EntriesPerSec, -pct, verdict)
		}
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "cplab: compare FAILED: regression over %.0f%% against %s\n", benchRegressionPct, oldPath)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: compare ok against %s\n", oldPath)
	return exitOK
}

// benchVerdict labels a regression percentage (positive = slower).
func benchVerdict(pct float64) string {
	switch {
	case pct > benchRegressionPct:
		return "REGRESSION"
	case pct < -benchRegressionPct:
		return "improved"
	default:
		return "ok"
	}
}

// logBenchRow prints one row's headline numbers to stderr.
func logBenchRow(row benchResult) {
	fmt.Fprintf(os.Stderr, "cplab: bench %-12s %8.1f ns/event  %12.0f events/s  (%d events)\n",
		row.Name, row.NSPerEvent, row.EventsPerSec, row.SimEvents)
}

// benchExp times one experiment run, counting dispatched kernel events.
func benchExp(id string, o repro.Options) (benchResult, error) {
	start := time.Now()
	_, reg, err := repro.RunInstrumented(id, o)
	wall := time.Since(start)
	if err != nil {
		return benchResult{}, err
	}
	return benchRow(id, wall, reg.Total("kern_events_total")), nil
}

// benchCampaign times a small checkpointed campaign at the given pool
// width in a throwaway directory, exercising the guarded runner, manifest
// checkpointing and record building alongside the simulation itself. Sim
// events come from the per-entry telemetry the campaign checkpoints, so
// the count is exact at any width.
func benchCampaign(o repro.Options, seed uint64, workers int) (benchResult, error) {
	dir, err := os.MkdirTemp("", "cplab-bench-")
	if err != nil {
		return benchResult{}, err
	}
	defer os.RemoveAll(dir)
	var entries []campaign.Entry
	for rep := 0; rep < benchCampaignReps; rep++ {
		for _, e := range repro.CampaignEntries(benchCampaignIDs, o, 0) {
			// Renaming the entry only changes its manifest key; the captured
			// runner still executes the original experiment.
			e.ID = fmt.Sprintf("%s@%d", e.ID, rep)
			entries = append(entries, e)
		}
	}
	c, err := campaign.New(campaign.Config{
		Path: filepath.Join(dir, "bench-campaign.json"),
		Seed: seed,
		Note: "bench",
	}, entries)
	if err != nil {
		return benchResult{}, err
	}
	start := time.Now()
	man, err := c.RunParallel(context.Background(), workers)
	wall := time.Since(start)
	if err != nil {
		return benchResult{}, err
	}
	if !man.Complete() {
		return benchResult{}, fmt.Errorf("bench campaign did not complete")
	}
	var events int64
	for _, rec := range man.Entries {
		for name, v := range rec.Telemetry {
			if base, _ := metrics.SplitName(name); base == "kern_events_total" {
				events += v
			}
		}
	}
	row := benchRow(fmt.Sprintf("campaign-p%d", workers), wall, events)
	row.Workers = workers
	if wall > 0 {
		row.EntriesPerSec = float64(len(man.IDs)) / wall.Seconds()
	}
	return row, nil
}

// benchBootFresh times cold machine boots: full construction of a 16-core
// machine — scheduler, cores, RNG streams, event queue — followed by
// teardown. SimEvents counts boots, so the row reads as ns/boot.
func benchBootFresh(seed uint64) (benchResult, error) {
	start := time.Now()
	for i := 0; i < benchBootReps; i++ {
		exps.NewMachine(exps.CFS, seed+uint64(i)).Shutdown()
	}
	return benchRow("boot-fresh", time.Since(start), benchBootReps), nil
}

// benchBootFork times the same acquisition path with a machine pool in
// scope: after one warm-up boot builds the pristine template, every
// exps.NewMachine forks the pooled snapshot and every Shutdown resets the
// shell back into the pool. Directly comparable to boot-fresh — the
// fork/cold ratio is the pool's per-machine speedup.
func benchBootFork(seed uint64) (benchResult, error) {
	restore := exps.ScopeMachinePool(exps.NewMachinePool(nil))
	defer restore()
	exps.NewMachine(exps.CFS, seed).Shutdown()
	start := time.Now()
	for i := 0; i < benchBootReps; i++ {
		exps.NewMachine(exps.CFS, seed+uint64(i)).Shutdown()
	}
	return benchRow("boot-fork", time.Since(start), benchBootReps), nil
}

// benchMicro times an in-memory (unchecked: Config.Path "") campaign over
// the micro plan at the given pool width. With per-entry simulation this
// short, entries/sec is dominated by machine acquisition and campaign
// machinery — the throughput the machine pool exists to raise.
func benchMicro(seed uint64, workers int) (benchResult, error) {
	c, err := campaign.New(campaign.Config{Seed: seed, Note: "bench-micro"},
		repro.MicroBenchEntries(benchMicroEntries))
	if err != nil {
		return benchResult{}, err
	}
	start := time.Now()
	man, err := c.RunParallel(context.Background(), workers)
	wall := time.Since(start)
	if err != nil {
		return benchResult{}, err
	}
	if !man.Complete() {
		return benchResult{}, fmt.Errorf("bench micro campaign did not complete")
	}
	var events int64
	for _, rec := range man.Entries {
		for name, v := range rec.Telemetry {
			if base, _ := metrics.SplitName(name); base == "kern_events_total" {
				events += v
			}
		}
	}
	row := benchRow(fmt.Sprintf("pool-micro-p%d", workers), wall, events)
	row.Workers = workers
	if wall > 0 {
		row.EntriesPerSec = float64(len(man.IDs)) / wall.Seconds()
	}
	return row, nil
}

// benchRow folds a timing into a result row.
func benchRow(name string, wall time.Duration, events int64) benchResult {
	row := benchResult{Name: name, WallNS: wall.Nanoseconds(), SimEvents: events}
	if events > 0 {
		row.NSPerEvent = float64(row.WallNS) / float64(events)
	}
	if wall > 0 {
		row.EventsPerSec = float64(events) / wall.Seconds()
	}
	return row
}

// emit writes data to path, or to stdout when path is "" or "-".
func emit(path string, data []byte) int {
	if path == "" || path == "-" {
		os.Stdout.Write(data)
		return exitOK
	}
	if err := durable.WriteFileAtomic(durable.OS(), path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: wrote %s (%d bytes)\n", path, len(data))
	return exitOK
}
