package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/metrics"
)

// metricsCmd runs one experiment with a fresh telemetry registry installed
// and exports the populated registry as Prometheus text (default) or JSON.
func metricsCmd(args []string) int {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	cf := addCommon(fs)
	exp := fs.String("exp", "", "experiment ID to instrument (required)")
	out := fs.String("o", "", "write the export to this file instead of stdout")
	fs.Parse(args)
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "cplab metrics -exp <id> [-json] [-o path] [flags]")
		return exitUsage
	}
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	start := time.Now()
	_, reg, err := repro.RunInstrumented(*exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", *exp, time.Since(start).Round(time.Millisecond))
	var buf bytes.Buffer
	if *cf.asJSON {
		err = reg.WriteJSON(&buf)
	} else {
		err = reg.WritePrometheus(&buf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	return emit(*out, buf.Bytes())
}

// profileCmd runs one experiment with a fresh sim-time profiler installed
// and reports wall-clock cost by kernel event kind and experiment phase.
func profileCmd(args []string) int {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	cf := addCommon(fs)
	exp := fs.String("exp", "", "experiment ID to profile (required)")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Parse(args)
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "cplab profile -exp <id> [-json] [-o path] [flags]")
		return exitUsage
	}
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	start := time.Now()
	_, prof, err := repro.RunProfiled(*exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", *exp, time.Since(start).Round(time.Millisecond))
	rep := prof.Report()
	var buf bytes.Buffer
	if *cf.asJSON {
		err = rep.WriteJSON(&buf)
	} else {
		err = rep.WriteText(&buf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	return emit(*out, buf.Bytes())
}

// benchIDs are the experiments the benchmark harness times individually;
// benchCampaignIDs is the small sweep that exercises the campaign path
// (checkpointing, containment, record building) end to end.
var (
	benchIDs         = []string{"fig4.1"}
	benchCampaignIDs = []string{"tab2.1", "fig4.1"}
)

// benchResult is one benchmark row of the BENCH_PR4.json artifact.
type benchResult struct {
	Name         string  `json:"name"`
	WallNS       int64   `json:"wall_ns"`
	SimEvents    int64   `json:"sim_events"`
	NSPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Workers and EntriesPerSec are set on campaign rows: the pool width
	// and the plan-entry throughput at that width.
	Workers       int     `json:"workers,omitempty"`
	EntriesPerSec float64 `json:"entries_per_sec,omitempty"`
}

// benchFile is the whole artifact.
type benchFile struct {
	Seed       uint64        `json:"seed"`
	Paper      bool          `json:"paper"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchWidths are the campaign pool widths the harness times: serial, two
// workers, and the machine's full width (deduplicated, in order).
func benchWidths() []int {
	widths := []int{1, 2, runtime.GOMAXPROCS(0)}
	var out []int
	for _, w := range widths {
		if len(out) == 0 || out[len(out)-1] < w {
			out = append(out, w)
		}
	}
	return out
}

// benchCmd times the simulator end to end — each benchIDs experiment plus a
// small checkpointed campaign at several pool widths — counting simulated
// kernel events through per-run telemetry, and writes ns/sim-event,
// events/sec and entries/sec rows to BENCH_PR4.json.
func benchCmd(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	cf := addCommon(fs)
	out := fs.String("o", "BENCH_PR4.json", "output path (- for stdout)")
	fs.Parse(args)
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	file := benchFile{Seed: *cf.seed, Paper: *cf.paper}
	for _, id := range benchIDs {
		row, err := benchExp(id, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
		file.Benchmarks = append(file.Benchmarks, row)
		logBenchRow(row)
	}
	for _, workers := range benchWidths() {
		row, err := benchCampaign(o, *cf.seed, workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
		file.Benchmarks = append(file.Benchmarks, row)
		logBenchRow(row)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	return emit(*out, append(data, '\n'))
}

// logBenchRow prints one row's headline numbers to stderr.
func logBenchRow(row benchResult) {
	fmt.Fprintf(os.Stderr, "cplab: bench %-12s %8.1f ns/event  %12.0f events/s  (%d events)\n",
		row.Name, row.NSPerEvent, row.EventsPerSec, row.SimEvents)
}

// benchExp times one experiment run, counting dispatched kernel events.
func benchExp(id string, o repro.Options) (benchResult, error) {
	start := time.Now()
	_, reg, err := repro.RunInstrumented(id, o)
	wall := time.Since(start)
	if err != nil {
		return benchResult{}, err
	}
	return benchRow(id, wall, reg.Total("kern_events_total")), nil
}

// benchCampaign times a small checkpointed campaign at the given pool
// width in a throwaway directory, exercising the guarded runner, manifest
// checkpointing and record building alongside the simulation itself. Sim
// events come from the per-entry telemetry the campaign checkpoints, so
// the count is exact at any width.
func benchCampaign(o repro.Options, seed uint64, workers int) (benchResult, error) {
	dir, err := os.MkdirTemp("", "cplab-bench-")
	if err != nil {
		return benchResult{}, err
	}
	defer os.RemoveAll(dir)
	entries := repro.CampaignEntries(benchCampaignIDs, o, 0)
	c, err := campaign.New(campaign.Config{
		Path: filepath.Join(dir, "bench-campaign.json"),
		Seed: seed,
		Note: "bench",
	}, entries)
	if err != nil {
		return benchResult{}, err
	}
	start := time.Now()
	man, err := c.RunParallel(context.Background(), workers)
	wall := time.Since(start)
	if err != nil {
		return benchResult{}, err
	}
	if !man.Complete() {
		return benchResult{}, fmt.Errorf("bench campaign did not complete")
	}
	var events int64
	for _, rec := range man.Entries {
		for name, v := range rec.Telemetry {
			if base, _ := metrics.SplitName(name); base == "kern_events_total" {
				events += v
			}
		}
	}
	row := benchRow(fmt.Sprintf("campaign-p%d", workers), wall, events)
	row.Workers = workers
	if wall > 0 {
		row.EntriesPerSec = float64(len(man.IDs)) / wall.Seconds()
	}
	return row, nil
}

// benchRow folds a timing into a result row.
func benchRow(name string, wall time.Duration, events int64) benchResult {
	row := benchResult{Name: name, WallNS: wall.Nanoseconds(), SimEvents: events}
	if events > 0 {
		row.NSPerEvent = float64(row.WallNS) / float64(events)
	}
	if wall > 0 {
		row.EventsPerSec = float64(events) / wall.Seconds()
	}
	return row
}

// emit writes data to path, or to stdout when path is "" or "-".
func emit(path string, data []byte) int {
	if path == "" || path == "-" {
		os.Stdout.Write(data)
		return exitOK
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: wrote %s (%d bytes)\n", path, len(data))
	return exitOK
}
