package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/metrics"
)

// metricsCmd runs one experiment with a fresh telemetry registry installed
// and exports the populated registry as Prometheus text (default) or JSON.
func metricsCmd(args []string) int {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	cf := addCommon(fs)
	exp := fs.String("exp", "", "experiment ID to instrument (required)")
	out := fs.String("o", "", "write the export to this file instead of stdout")
	fs.Parse(args)
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "cplab metrics -exp <id> [-json] [-o path] [flags]")
		return exitUsage
	}
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	start := time.Now()
	_, reg, err := repro.RunInstrumented(*exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", *exp, time.Since(start).Round(time.Millisecond))
	var buf bytes.Buffer
	if *cf.asJSON {
		err = reg.WriteJSON(&buf)
	} else {
		err = reg.WritePrometheus(&buf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	return emit(*out, buf.Bytes())
}

// profileCmd runs one experiment with a fresh sim-time profiler installed
// and reports wall-clock cost by kernel event kind and experiment phase.
func profileCmd(args []string) int {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	cf := addCommon(fs)
	exp := fs.String("exp", "", "experiment ID to profile (required)")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Parse(args)
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "cplab profile -exp <id> [-json] [-o path] [flags]")
		return exitUsage
	}
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	start := time.Now()
	_, prof, err := repro.RunProfiled(*exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", *exp, time.Since(start).Round(time.Millisecond))
	rep := prof.Report()
	var buf bytes.Buffer
	if *cf.asJSON {
		err = rep.WriteJSON(&buf)
	} else {
		err = rep.WriteText(&buf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	return emit(*out, buf.Bytes())
}

// benchIDs are the experiments the benchmark harness times individually;
// benchCampaignIDs is the small sweep that exercises the campaign path
// (checkpointing, containment, record building) end to end.
var (
	benchIDs         = []string{"fig4.1"}
	benchCampaignIDs = []string{"tab2.1", "fig4.1"}
)

// benchResult is one benchmark row of the BENCH_PR3.json artifact.
type benchResult struct {
	Name         string  `json:"name"`
	WallNS       int64   `json:"wall_ns"`
	SimEvents    int64   `json:"sim_events"`
	NSPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// benchFile is the whole artifact.
type benchFile struct {
	Seed       uint64        `json:"seed"`
	Paper      bool          `json:"paper"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// benchCmd times the simulator end to end — each benchIDs experiment plus a
// small checkpointed campaign — counting simulated kernel events through a
// fresh telemetry registry, and writes ns/sim-event and events/sec rows to
// BENCH_PR3.json.
func benchCmd(args []string) int {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	cf := addCommon(fs)
	out := fs.String("o", "BENCH_PR3.json", "output path (- for stdout)")
	fs.Parse(args)
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	file := benchFile{Seed: *cf.seed, Paper: *cf.paper}
	for _, id := range benchIDs {
		row, err := benchExp(id, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
		file.Benchmarks = append(file.Benchmarks, row)
		fmt.Fprintf(os.Stderr, "cplab: bench %-10s %8.1f ns/event  %12.0f events/s  (%d events)\n",
			row.Name, row.NSPerEvent, row.EventsPerSec, row.SimEvents)
	}
	row, err := benchCampaign(o, *cf.seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	file.Benchmarks = append(file.Benchmarks, row)
	fmt.Fprintf(os.Stderr, "cplab: bench %-10s %8.1f ns/event  %12.0f events/s  (%d events)\n",
		row.Name, row.NSPerEvent, row.EventsPerSec, row.SimEvents)

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	return emit(*out, append(data, '\n'))
}

// benchExp times one experiment run, counting dispatched kernel events.
func benchExp(id string, o repro.Options) (benchResult, error) {
	start := time.Now()
	_, reg, err := repro.RunInstrumented(id, o)
	wall := time.Since(start)
	if err != nil {
		return benchResult{}, err
	}
	return benchRow(id, wall, reg.Total("kern_events_total")), nil
}

// benchCampaign times a small checkpointed campaign in a throwaway
// directory, exercising the guarded runner, manifest checkpointing and
// record building alongside the simulation itself.
func benchCampaign(o repro.Options, seed uint64) (benchResult, error) {
	dir, err := os.MkdirTemp("", "cplab-bench-")
	if err != nil {
		return benchResult{}, err
	}
	defer os.RemoveAll(dir)
	reg := metrics.New()
	prev := metrics.SetAmbient(reg)
	defer metrics.SetAmbient(prev)
	entries := repro.CampaignEntries(benchCampaignIDs, o, 0)
	c, err := campaign.New(campaign.Config{
		Path: filepath.Join(dir, "bench-campaign.json"),
		Seed: seed,
		Note: "bench",
	}, entries)
	if err != nil {
		return benchResult{}, err
	}
	start := time.Now()
	man, err := c.Run()
	wall := time.Since(start)
	if err != nil {
		return benchResult{}, err
	}
	if !man.Complete() {
		return benchResult{}, fmt.Errorf("bench campaign did not complete")
	}
	return benchRow("campaign", wall, reg.Total("kern_events_total")), nil
}

// benchRow folds a timing into a result row.
func benchRow(name string, wall time.Duration, events int64) benchResult {
	row := benchResult{Name: name, WallNS: wall.Nanoseconds(), SimEvents: events}
	if events > 0 {
		row.NSPerEvent = float64(row.WallNS) / float64(events)
	}
	if wall > 0 {
		row.EventsPerSec = float64(events) / wall.Seconds()
	}
	return row
}

// emit writes data to path, or to stdout when path is "" or "-".
func emit(path string, data []byte) int {
	if path == "" || path == "-" {
		os.Stdout.Write(data)
		return exitOK
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: wrote %s (%d bytes)\n", path, len(data))
	return exitOK
}
