package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// readManifest loads a manifest's bytes or fails the test.
func readManifest(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCampaignByteIdenticalWithSpans is the acceptance gate for the
// side-effect-free guarantee: a campaign's stdout and manifest must be
// byte-identical with tracing off, with tracing on at width 1, and with
// tracing on at width 4 — spans observe, they never perturb.
func TestCampaignByteIdenticalWithSpans(t *testing.T) {
	dir := t.TempDir()
	refMan := filepath.Join(dir, "ref.json")
	refOut := capture(t, func() {
		if code := run([]string{"campaign", "-manifest", refMan, "-ids", testIDs, "-seed", "3"}); code != exitOK {
			t.Errorf("untraced campaign exit %d", code)
		}
	})
	if refOut == "" {
		t.Fatal("reference campaign printed nothing")
	}

	for _, width := range []string{"1", "4"} {
		man := filepath.Join(dir, "traced"+width+".json")
		log := filepath.Join(dir, "spans"+width+".jsonl")
		out := capture(t, func() {
			args := []string{"campaign", "-manifest", man, "-ids", testIDs, "-seed", "3",
				"-parallel", width, "-spans", log, "-spanslices"}
			if code := run(args); code != exitOK {
				t.Errorf("traced campaign (width %s) exit %d", width, code)
			}
		})
		if out != refOut {
			t.Fatalf("stdout differs with -spans at width %s:\n--- ref ---\n%s\n--- traced ---\n%s", width, refOut, out)
		}
		if got := readManifest(t, man); got != readManifest(t, refMan) {
			t.Fatalf("manifest differs with -spans at width %s", width)
		}

		lg, err := obs.ReadLog(nil, log)
		if err != nil {
			t.Fatal(err)
		}
		if lg.Dropped != 0 {
			t.Fatalf("clean shutdown left %d torn lines", lg.Dropped)
		}
		tiers := map[string]int{}
		for _, s := range lg.Spans {
			tiers[s.Tier]++
		}
		for _, tier := range []string{obs.TierProcess, obs.TierCampaign, obs.TierEntry, obs.TierMachine, obs.TierSlice} {
			if tiers[tier] == 0 {
				t.Fatalf("width %s span log missing tier %q: %v", width, tier, tiers)
			}
		}
		if got, want := tiers[obs.TierEntry], len(strings.Split(testIDs, ",")); got != want {
			t.Fatalf("entry spans = %d, want %d", got, want)
		}
	}
}

// TestCampaignHaltResumeByteIdenticalWithSpans interrupts a traced
// campaign and resumes it traced: the final stdout and manifest still
// match the untraced uninterrupted reference, and both sessions' span
// logs are readable.
func TestCampaignHaltResumeByteIdenticalWithSpans(t *testing.T) {
	dir := t.TempDir()
	refMan := filepath.Join(dir, "ref.json")
	refOut := capture(t, func() {
		if code := run([]string{"campaign", "-manifest", refMan, "-ids", testIDs, "-seed", "3"}); code != exitOK {
			t.Errorf("untraced campaign exit %d", code)
		}
	})

	cutMan := filepath.Join(dir, "cut.json")
	log1 := filepath.Join(dir, "s1.jsonl")
	log2 := filepath.Join(dir, "s2.jsonl")
	capture(t, func() {
		args := []string{"campaign", "-manifest", cutMan, "-ids", testIDs, "-seed", "3",
			"-haltafter", "1", "-spans", log1}
		if code := run(args); code != exitHalted {
			t.Errorf("traced halt exit %d, want %d", code, exitHalted)
		}
	})
	resumedOut := capture(t, func() {
		args := []string{"resume", "-manifest", cutMan, "-ids", testIDs, "-seed", "3", "-spans", log2}
		if code := run(args); code != exitOK {
			t.Errorf("traced resume exit %d", code)
		}
	})
	if resumedOut != refOut {
		t.Fatalf("traced halt/resume stdout differs:\n--- ref ---\n%s\n--- resumed ---\n%s", refOut, resumedOut)
	}
	if readManifest(t, cutMan) != readManifest(t, refMan) {
		t.Fatal("traced halt/resume manifest differs from untraced reference")
	}
	for _, log := range []string{log1, log2} {
		lg, err := obs.ReadLog(nil, log)
		if err != nil {
			t.Fatal(err)
		}
		if len(lg.Spans) < 2 {
			t.Fatalf("%s: only %d spans", log, len(lg.Spans))
		}
	}
}

// TestTraceRecordByteIdenticalWithSpans pins the other golden artifact:
// a recorded kernel event stream is bit-identical whether or not span
// tracing (including per-event slices) rode along.
func TestTraceRecordByteIdenticalWithSpans(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.cptrace")
	traced := filepath.Join(dir, "traced.cptrace")
	log := filepath.Join(dir, "spans.jsonl")
	capture(t, func() {
		if code := run([]string{"trace", "record", "fig4.1", "-o", plain, "-seed", "2"}); code != exitOK {
			t.Fatalf("plain record exit %d", code)
		}
		if code := run([]string{"trace", "record", "fig4.1", "-o", traced, "-seed", "2",
			"-spans", log, "-spanslices"}); code != exitOK {
			t.Fatalf("traced record exit %d", code)
		}
	})
	a, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(traced)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("golden trace differs with -spans -spanslices")
	}
	lg, err := obs.ReadLog(nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.Spans) < 2 {
		t.Fatalf("span log suspiciously small: %d spans", len(lg.Spans))
	}
}

// TestTimelineCommand folds a real span log into Chrome trace JSON and
// checks the shape Perfetto expects.
func TestTimelineCommand(t *testing.T) {
	dir := t.TempDir()
	man := filepath.Join(dir, "c.json")
	log := filepath.Join(dir, "spans.jsonl")
	capture(t, func() {
		if code := run([]string{"campaign", "-manifest", man, "-ids", "fig4.1", "-spans", log}); code != exitOK {
			t.Fatalf("campaign exit %d", code)
		}
	})
	out := filepath.Join(dir, "trace.json")
	capture(t, func() {
		if code := run([]string{"timeline", "-o", out, log}); code != exitOK {
			t.Fatalf("timeline exit %d", code)
		}
	})
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("timeline produced no trace events")
	}
	var hasProcName bool
	for _, e := range parsed.TraceEvents {
		if e["ph"] == "M" && e["name"] == "process_name" {
			hasProcName = true
		}
	}
	if !hasProcName {
		t.Fatal("trace missing process_name metadata")
	}

	// Usage errors: no logs, missing file.
	capture(t, func() {
		if code := run([]string{"timeline", "-o", out}); code != exitUsage {
			t.Fatalf("timeline with no logs exit %d, want %d", code, exitUsage)
		}
		if code := run([]string{"timeline", "-o", out, filepath.Join(dir, "missing.jsonl")}); code != exitDegraded {
			t.Fatalf("timeline with missing log exit %d, want %d", code, exitDegraded)
		}
	})
}
