package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out
}

const testIDs = "tab2.1,fig4.1,abl.gentle"

// TestCampaignInterruptResumeByteIdentical is the CLI-level acceptance
// test: a campaign halted mid-way and resumed must print exactly what an
// uninterrupted campaign prints, and leave an identical manifest.
func TestCampaignInterruptResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	refMan := filepath.Join(dir, "ref.json")
	cutMan := filepath.Join(dir, "cut.json")

	refOut := capture(t, func() {
		if code := run([]string{"campaign", "-manifest", refMan, "-ids", testIDs, "-seed", "3"}); code != exitOK {
			t.Errorf("uninterrupted campaign exit %d", code)
		}
	})

	cutOut := capture(t, func() {
		if code := run([]string{"campaign", "-manifest", cutMan, "-ids", testIDs, "-seed", "3", "-haltafter", "1"}); code != exitHalted {
			t.Errorf("interrupted campaign exit %d, want %d", code, exitHalted)
		}
	})
	if cutOut != "" {
		t.Errorf("halted campaign wrote to stdout: %q", cutOut)
	}
	resumedOut := capture(t, func() {
		if code := run([]string{"resume", "-manifest", cutMan, "-ids", testIDs, "-seed", "3"}); code != exitOK {
			t.Errorf("resume exit %d", code)
		}
	})

	if refOut == "" || !strings.Contains(refOut, "===== tab2.1") {
		t.Fatalf("reference output suspicious:\n%s", refOut)
	}
	if resumedOut != refOut {
		t.Fatalf("resumed output differs from uninterrupted:\n--- ref ---\n%s\n--- resumed ---\n%s", refOut, resumedOut)
	}
	ref, err := os.ReadFile(refMan)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := os.ReadFile(cutMan)
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(cut) {
		t.Fatal("resumed manifest differs from uninterrupted manifest")
	}
}

// TestCampaignAutoResumesExistingManifest checks `campaign` on an existing
// manifest resumes instead of clobbering it.
func TestCampaignAutoResumesExistingManifest(t *testing.T) {
	man := filepath.Join(t.TempDir(), "c.json")
	capture(t, func() {
		if code := run([]string{"campaign", "-manifest", man, "-ids", "tab2.1,fig4.1", "-haltafter", "1"}); code != exitHalted {
			t.Fatalf("halted campaign exit %d", code)
		}
	})
	capture(t, func() {
		if code := run([]string{"campaign", "-manifest", man, "-ids", "tab2.1,fig4.1"}); code != exitOK {
			t.Fatalf("auto-resume exit %d", code)
		}
	})
}

// TestCampaignUnknownIDSkippedAndNonZero checks an unknown experiment ID
// yields a skipped record and a failing exit code (satellite: campaigns
// with anything but clean passes exit non-zero).
func TestCampaignUnknownIDSkippedAndNonZero(t *testing.T) {
	man := filepath.Join(t.TempDir(), "c.json")
	out := capture(t, func() {
		if code := run([]string{"campaign", "-manifest", man, "-ids", "tab2.1,fig0.0"}); code != exitDegraded {
			t.Fatalf("campaign with unknown id exit %d, want %d", code, exitDegraded)
		}
	})
	if !strings.Contains(out, "SKIPPED") {
		t.Fatalf("skipped entry not rendered:\n%s", out)
	}
}

// TestCampaignResumeRefusesFlagMismatch checks resuming under different
// flags is refused rather than silently merging incomparable results.
func TestCampaignResumeRefusesFlagMismatch(t *testing.T) {
	man := filepath.Join(t.TempDir(), "c.json")
	capture(t, func() {
		if code := run([]string{"campaign", "-manifest", man, "-ids", "tab2.1,fig4.1", "-haltafter", "1"}); code != exitHalted {
			t.Fatalf("halted campaign exit %d", code)
		}
	})
	for _, extra := range [][]string{
		{"-seed", "99"},
		{"-retries", "5"},
		{"-faults", "0.1"},
	} {
		args := append([]string{"resume", "-manifest", man, "-ids", "tab2.1,fig4.1"}, extra...)
		capture(t, func() {
			if code := run(args); code != exitDegraded {
				t.Errorf("resume with %v exit %d, want refusal (%d)", extra, code, exitDegraded)
			}
		})
	}
}

// TestTraceRecordAndDiffCLI exercises the trace subcommands end to end:
// record twice (identical), diff clean, then perturb and diff dirty.
func TestTraceRecordAndDiffCLI(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.cptrace")
	b := filepath.Join(dir, "b.cptrace")
	capture(t, func() {
		if code := run([]string{"trace", "record", "fig4.1", "-o", a, "-seed", "2"}); code != exitOK {
			t.Fatalf("trace record exit %d", code)
		}
		if code := run([]string{"trace", "record", "fig4.1", "-o", b, "-seed", "2"}); code != exitOK {
			t.Fatalf("trace record exit %d", code)
		}
	})
	capture(t, func() {
		if code := run([]string{"trace", "diff", a, b}); code != exitOK {
			t.Fatalf("identical traces diff exit %d", code)
		}
	})
	c := filepath.Join(dir, "c.cptrace")
	capture(t, func() {
		if code := run([]string{"trace", "record", "fig4.1", "-o", c, "-seed", "4"}); code != exitOK {
			t.Fatalf("trace record exit %d", code)
		}
	})
	out := capture(t, func() {
		if code := run([]string{"trace", "diff", a, c}); code != exitDegraded {
			t.Fatalf("different-seed diff exit %d, want %d", code, exitDegraded)
		}
	})
	if !strings.Contains(out, "mismatch") && !strings.Contains(out, "diverges") {
		t.Fatalf("divergence report missing:\n%s", out)
	}
}

// TestUsageErrors checks argument validation exits with the usage code.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"run"},
		{"trace"},
		{"trace", "bogus"},
		{"trace", "diff", "only-one.cptrace"},
		{"trace", "record"},
	}
	for _, args := range cases {
		capture(t, func() {
			if code := run(args); code != exitUsage {
				t.Errorf("run(%v) exit %d, want %d", args, code, exitUsage)
			}
		})
	}
	capture(t, func() {
		if code := run([]string{"run", "tab2.1", "-faults", "1.5"}); code != exitUsage {
			t.Errorf("out-of-range -faults accepted")
		}
	})
}
