package main

// cluster.go is the `cplab cluster` subcommand: a checkpointed campaign
// sweep sharded across cplabd workers through the fabric coordinator.
// The note, plan and manifest layout are exactly `cplab campaign`'s, so
// the merged manifest is byte-identical to a serial run of the same plan
// and either tool can resume the other's checkpoints.

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/fabric"
	"repro/internal/labd"
	"repro/internal/report"
	"repro/internal/timebase"
)

// clusterCmd runs (or auto-resumes) a cluster campaign across cplabd
// workers.
func clusterCmd(args []string) int {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	cf := addCommon(fs)
	workersCSV := fs.String("workers", "", "comma-separated cplabd base URLs (required)")
	manifest := fs.String("manifest", "campaign.json", "merged checkpoint manifest path")
	idsCSV := fs.String("ids", "", "comma-separated experiment IDs (default: all, in paper order)")
	retries := fs.Int("retries", 2, "guarded bumped-seed retries per experiment")
	shard := fs.Int("shard", 4, "plan entries per shard")
	parallel := fs.Int("parallel", 1, "campaign workers per cplabd job")
	wall := fs.Duration("wall", 0, "wall-clock budget for this session; halts resumable (0 = unbounded)")
	hang := fs.Duration("hang", 2*time.Minute, "cancel and requeue a shard job with no progress for this long")
	poll := fs.Duration("poll", 250*time.Millisecond, "job polling cadence")
	stealAfter := fs.Duration("steal", 2*time.Second, "idle workers duplicate shards running longer than this")
	reqTimeout := fs.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
	maxRetries := fs.Int("httpretries", 4, "per-request retry budget")
	chaosnet := fs.Float64("chaosnet", 0, "network fault-injection rate in [0,1]: drops, delays, 503s, truncations (testing)")
	chaosseed := fs.Uint64("chaosseed", 1, "seed for the -chaosnet fault schedule")
	metricsAddr := fs.String("metricsaddr", "", "serve coordinator /metrics here (empty = off)")
	force := fs.Bool("force", false, "discard an existing manifest and start over")
	fs.Parse(args)
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	if *workersCSV == "" {
		fmt.Fprintln(os.Stderr, "cplab: cluster needs -workers (comma-separated cplabd URLs)")
		return exitUsage
	}
	if *retries < 0 {
		fmt.Fprintf(os.Stderr, "cplab: -retries %d is negative\n", *retries)
		return exitUsage
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "cplab: -parallel %d is not positive\n", *parallel)
		return exitUsage
	}
	if *chaosnet < 0 || *chaosnet > 1 {
		fmt.Fprintf(os.Stderr, "cplab: -chaosnet %v is outside [0,1]\n", *chaosnet)
		return exitUsage
	}
	stop, err := cf.startSpansAs("cplab", fmt.Sprintf("cluster-seed%d", *cf.seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	defer stop()

	var workers []string
	for _, w := range strings.Split(*workersCSV, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	plan := planIDs(*idsCSV)
	for _, id := range plan {
		if _, ok := repro.Lookup(id); !ok {
			fmt.Fprintf(os.Stderr, "cplab: unknown experiment %q (try `cplab list`)\n", id)
			return exitUsage
		}
	}

	var transport http.RoundTripper
	if *chaosnet > 0 {
		transport = fabric.MustNewChaosTransport(fabric.ChaosConfig{
			Drop:     *chaosnet,
			Delay:    *chaosnet,
			DelayMax: 20 * time.Millisecond,
			Err5xx:   *chaosnet,
			Truncate: *chaosnet,
			Seed:     *chaosseed,
		}, nil)
		fmt.Fprintf(os.Stderr, "cplab: chaosnet on — injecting network faults at rate %g (seed %d)\n", *chaosnet, *chaosseed)
	}

	cfg := fabric.Config{
		Workers: workers,
		Spec: labd.Spec{
			Paper:     *cf.paper,
			Seed:      *cf.seed,
			Faults:    *cf.faults,
			SimBudget: time.Duration(o.SimBudget),
			Retries:   *retries,
			Parallel:  *parallel,
		},
		// The same note `cplab campaign` and cplabd derive, pinning every
		// result-shaping knob but the seed; any mismatch anywhere in the
		// cluster is refused instead of merging incomparable records.
		Note:           fmt.Sprintf("paper=%t faults=%g simbudget=%s retries=%d", *cf.paper, *cf.faults, timebase.Duration(o.SimBudget), *retries),
		Path:           *manifest,
		ShardSize:      *shard,
		RequestTimeout: *reqTimeout,
		PollInterval:   *poll,
		HangTimeout:    *hang,
		StealAfter:     *stealAfter,
		MaxRetries:     *maxRetries,
		Transport:      transport,
		Log:            os.Stderr,
	}

	_, statErr := os.Stat(*manifest)
	exists := statErr == nil
	var co *fabric.Coordinator
	if exists && !*force {
		fmt.Fprintf(os.Stderr, "cplab: manifest %s exists — resuming the cluster sweep (use -force to start over)\n", *manifest)
		co, err = fabric.Resume(cfg, plan)
	} else {
		co, err = fabric.New(cfg, plan)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitUsage
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			co.WriteMetrics(w)
		})
		mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(co.Status())
		})
		ms := labd.NewHTTPServer(mux)
		go ms.Serve(ln)
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "cplab: coordinator metrics on http://%s/metrics, progress on /status\n", ln.Addr())
	}

	ctx := context.Background()
	if *wall > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *wall)
		defer cancel()
	}
	man, runErr := co.Run(ctx)
	fmt.Fprintln(os.Stderr, "===== campaign summary =====")
	fmt.Fprint(os.Stderr, report.CampaignSummary(man.Rows()))
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "cplab:", runErr)
		if errors.Is(runErr, fabric.ErrHalted) {
			return exitHalted
		}
		return exitDegraded
	}

	// Complete: stdout is assembled from the merged manifest in plan order —
	// byte-for-byte what a width-1 `cplab campaign` of the same plan prints.
	if *cf.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(man); err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
	} else {
		printManifestResults(man)
	}
	if !man.Clean() {
		return exitDegraded
	}
	return exitOK
}

// planIDs parses -ids, defaulting to the full registry in paper order.
func planIDs(csv string) []string {
	var ids []string
	if csv != "" {
		for _, id := range strings.Split(csv, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		return ids
	}
	for _, e := range repro.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}
