package main

// tail.go is `cplab tail`: a human-readable poll of a coordinator's
// /status endpoint — per-worker shard assignments, entries/sec and ETA —
// the live companion to the recorded span timeline.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/fabric"
)

// tailCmd polls a coordinator /status endpoint and renders progress lines
// until the sweep completes, halts, or -n polls have been made.
func tailCmd(args []string) int {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	addr := fs.String("addr", "", "coordinator status address, e.g. 127.0.0.1:9090 (required)")
	interval := fs.Duration("interval", time.Second, "poll cadence")
	count := fs.Int("n", 0, "stop after N polls (0 = until complete or halted)")
	fs.Parse(args)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "cplab tail -addr HOST:PORT [-interval D] [-n N]")
		return exitUsage
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + "/status"
	client := &http.Client{Timeout: 10 * time.Second}
	for polls := 0; ; {
		st, err := fetchStatus(client, url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
		fmt.Println(renderStatus(st))
		polls++
		switch {
		case st.Halted:
			fmt.Fprintf(os.Stderr, "cplab: cluster halted: %s\n", st.Reason)
			return exitHalted
		case st.Complete:
			return exitOK
		case *count > 0 && polls >= *count:
			return exitOK
		}
		time.Sleep(*interval)
	}
}

func fetchStatus(client *http.Client, url string) (fabric.Status, error) {
	var st fabric.Status
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("%s: %v", url, err)
	}
	return st, nil
}

// renderStatus formats one Status snapshot as a single progress line.
func renderStatus(st fabric.Status) string {
	var b strings.Builder
	fmt.Fprintf(&b, "shards %d/%d  entries %d/%d",
		st.ShardsCommitted, st.ShardsTotal, st.EntriesDone, st.EntriesTotal)
	if st.EntriesPerSec > 0 {
		fmt.Fprintf(&b, "  %.2f entries/s", st.EntriesPerSec)
	}
	if st.ETASec >= 0 {
		fmt.Fprintf(&b, "  eta %s", (time.Duration(st.ETASec * float64(time.Second))).Round(time.Second))
	}
	for _, w := range st.Workers {
		state := "idle"
		if !w.Healthy {
			state = "down"
		} else if w.Shard >= 0 {
			state = fmt.Sprintf("shard %02d", w.Shard)
			if w.Job != "" {
				state += " " + w.Job
			}
		}
		fmt.Fprintf(&b, "  [%s %s]", w.Base, state)
	}
	return b.String()
}
