package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testGrid is a small grid that exercises every report column shape: a
// defeated cell (cordon), a throttled cell (preemptcap) and the baseline.
var testGrid = []string{
	"-attacks", "nanosleep", "-defenses", "off,cordon",
}

// TestMatrixWidthByteIdentical checks the matrix acceptance criterion: the
// grid report and manifest are byte-identical whether the cells ran serially
// or across parallel workers.
func TestMatrixWidthByteIdentical(t *testing.T) {
	dir := t.TempDir()
	serMan := filepath.Join(dir, "ser.json")
	parMan := filepath.Join(dir, "par.json")

	serial := capture(t, func() {
		args := append([]string{"matrix", "-manifest", serMan, "-seed", "3"}, testGrid...)
		if code := run(args); code != exitOK {
			t.Errorf("serial matrix exit %d", code)
		}
	})
	wide := capture(t, func() {
		args := append([]string{"matrix", "-manifest", parMan, "-seed", "3", "-parallel", "2"}, testGrid...)
		if code := run(args); code != exitOK {
			t.Errorf("parallel matrix exit %d", code)
		}
	})
	if serial == "" || !strings.Contains(serial, "attack success rate") {
		t.Fatalf("matrix report suspicious:\n%s", serial)
	}
	if wide != serial {
		t.Fatalf("parallel report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, wide)
	}
	ser, err := os.ReadFile(serMan)
	if err != nil {
		t.Fatal(err)
	}
	par, err := os.ReadFile(parMan)
	if err != nil {
		t.Fatal(err)
	}
	if string(ser) != string(par) {
		t.Fatal("parallel manifest differs from serial manifest")
	}
}

// TestMatrixInterruptResumeByteIdentical checks a grid halted mid-sweep
// resumes through the durable checkpoint path and ends with exactly the
// uninterrupted run's report and manifest.
func TestMatrixInterruptResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	refMan := filepath.Join(dir, "ref.json")
	cutMan := filepath.Join(dir, "cut.json")

	refOut := capture(t, func() {
		args := append([]string{"matrix", "-manifest", refMan, "-seed", "3"}, testGrid...)
		if code := run(args); code != exitOK {
			t.Errorf("uninterrupted matrix exit %d", code)
		}
	})
	cutOut := capture(t, func() {
		args := append([]string{"matrix", "-manifest", cutMan, "-seed", "3", "-haltafter", "1"}, testGrid...)
		if code := run(args); code != exitHalted {
			t.Errorf("interrupted matrix exit %d, want %d", code, exitHalted)
		}
	})
	if cutOut != "" {
		t.Errorf("halted matrix wrote to stdout: %q", cutOut)
	}
	resumedOut := capture(t, func() {
		args := append([]string{"matrix", "-manifest", cutMan, "-seed", "3"}, testGrid...)
		if code := run(args); code != exitOK {
			t.Errorf("resume exit %d", code)
		}
	})
	if resumedOut != refOut {
		t.Fatalf("resumed report differs from uninterrupted:\n--- ref ---\n%s\n--- resumed ---\n%s", refOut, resumedOut)
	}
	ref, err := os.ReadFile(refMan)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := os.ReadFile(cutMan)
	if err != nil {
		t.Fatal(err)
	}
	if string(ref) != string(cut) {
		t.Fatal("resumed manifest differs from uninterrupted manifest")
	}
}

// TestMatrixResumeRefusesGridMismatch checks the note pins the grid shape:
// a halted sweep cannot be resumed under a different axis subset.
func TestMatrixResumeRefusesGridMismatch(t *testing.T) {
	man := filepath.Join(t.TempDir(), "m.json")
	capture(t, func() {
		args := append([]string{"matrix", "-manifest", man, "-haltafter", "1"}, testGrid...)
		if code := run(args); code != exitHalted {
			t.Fatalf("halted matrix exit %d", code)
		}
	})
	capture(t, func() {
		args := []string{"matrix", "-manifest", man, "-attacks", "ptimer", "-defenses", "off,cordon"}
		if code := run(args); code != exitDegraded {
			t.Errorf("resume with different grid exit %d, want refusal (%d)", code, exitDegraded)
		}
	})
}

// TestMatrixAxisValidation checks unknown axis values are rejected at usage
// time with a did-you-mean, before any cell runs.
func TestMatrixAxisValidation(t *testing.T) {
	man := filepath.Join(t.TempDir(), "m.json")
	for _, args := range [][]string{
		{"matrix", "-manifest", man, "-attacks", "nanosleap"},
		{"matrix", "-manifest", man, "-defenses", "cordonn"},
		{"matrix", "-manifest", man, "-retries", "-1"},
		{"matrix", "-manifest", man, "-parallel", "0"},
	} {
		capture(t, func() {
			if code := run(args); code != exitUsage {
				t.Errorf("run(%v) exit %d, want %d", args, code, exitUsage)
			}
		})
	}
	if _, err := os.Stat(man); !os.IsNotExist(err) {
		t.Fatal("rejected matrix invocation still created a manifest")
	}
}

// TestMatrixCellRunnableByID checks matrix cells resolve through the
// ordinary run path, and typos get cell-aware suggestions.
func TestMatrixCellRunnableByID(t *testing.T) {
	out := capture(t, func() {
		if code := run([]string{"run", "matrix/nanosleep+cordon", "-seed", "2"}); code != exitOK {
			t.Fatalf("run of matrix cell exit %d", code)
		}
	})
	if !strings.Contains(out, "matrix cell — nanosleep attack vs cordon defense") {
		t.Fatalf("cell render missing:\n%s", out)
	}
	if s := suggest("matrix/nanosleep+cordn"); s != "matrix/nanosleep+cordon" {
		t.Fatalf("suggest = %q", s)
	}
}

// TestSubcommandDidYouMean checks an unknown subcommand gets a suggestion.
func TestSubcommandDidYouMean(t *testing.T) {
	if s := suggestFrom("matirx", subcommands); s != "matrix" {
		t.Fatalf("suggestFrom(matirx) = %q", s)
	}
	if s := suggestFrom("campain", subcommands); s != "campaign" {
		t.Fatalf("suggestFrom(campain) = %q", s)
	}
	capture(t, func() {
		if code := run([]string{"matirx"}); code != exitUsage {
			t.Fatalf("unknown subcommand exit %d, want %d", code, exitUsage)
		}
	})
}

// TestRunDefenseFlag checks -defense installs the preset on ordinary runs
// and rejects unknown presets.
func TestRunDefenseFlag(t *testing.T) {
	capture(t, func() {
		if code := run([]string{"run", "fig4.1", "-defense", "slackrand"}); code != exitOK {
			t.Errorf("run with -defense exit %d", code)
		}
	})
	capture(t, func() {
		if code := run([]string{"run", "fig4.1", "-defense", "slackrnd"}); code != exitUsage {
			t.Errorf("unknown -defense preset exit %d, want %d", code, exitUsage)
		}
	})
}
