package main

// timeline.go folds one or more JSONL span logs (coordinator + workers)
// into Chrome trace-event JSON for Perfetto / chrome://tracing. The
// propagated Cp-Trace-Id/Cp-Span-Id lineage recorded in the logs stitches
// the processes into one causal timeline, with wall-clock and sim-clock
// tracks kept apart.

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

// timelineCmd exports span logs as a Chrome trace.
func timelineCmd(args []string) int {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	out := fs.String("o", "trace.json", `output trace path ("-" = stdout)`)
	fs.Parse(args)
	if fs.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "cplab timeline [-o trace.json] <spans.jsonl> [more.jsonl...]")
		return exitUsage
	}
	var logs []*obs.Log
	for _, path := range fs.Args() {
		lg, err := obs.ReadLog(nil, path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
		if lg.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "cplab: %s: skipped %d unparseable line(s) (torn tail)\n", path, lg.Dropped)
		}
		logs = append(logs, lg)
	}
	merged := obs.Merge(logs...)
	if len(merged.Spans) == 0 {
		fmt.Fprintln(os.Stderr, "cplab: no spans in the given logs")
		return exitDegraded
	}
	b, err := obs.ChromeTrace(merged)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	b = append(b, '\n')
	if code := emit(*out, b); code != exitOK {
		return code
	}
	procs := merged.Procs()
	fmt.Fprintf(os.Stderr, "cplab: timeline: %d spans from %d process(es) %v\n",
		len(merged.Spans), len(procs), procs)
	return exitOK
}
