package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMetricsCmdPrometheus `cplab metrics -exp fig4.1` must emit well-formed
// Prometheus text: TYPE lines per family, every sample "name value", and the
// kernel/attack families populated.
func TestMetricsCmdPrometheus(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if code := run([]string{"metrics", "-exp", "fig4.1", "-o", path}); code != exitOK {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "# TYPE kern_events_total counter") {
		t.Fatalf("missing kern_events_total family:\n%s", text)
	}
	if !strings.Contains(text, "attack_preemptions_total") {
		t.Fatalf("missing attack_preemptions_total:\n%s", text)
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
	// Same run, same seed: the export must be byte-identical.
	path2 := filepath.Join(t.TempDir(), "metrics2.prom")
	if code := run([]string{"metrics", "-exp", "fig4.1", "-o", path2}); code != exitOK {
		t.Fatalf("second run exit %d", code)
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("metrics export not deterministic across identical runs")
	}
}

// TestMetricsCmdJSON the -json variant round-trips and holds the same
// counters.
func TestMetricsCmdJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if code := run([]string{"metrics", "-exp", "fig4.1", "-json", "-o", path}); code != exitOK {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if snap.Counters["kern_sched_in_total"] == 0 {
		t.Fatalf("kern_sched_in_total missing or zero: %v", snap.Counters)
	}
}

// TestMetricsCmdUsage a missing -exp is a usage error.
func TestMetricsCmdUsage(t *testing.T) {
	if code := run([]string{"metrics"}); code != exitUsage {
		t.Fatalf("exit %d, want %d", code, exitUsage)
	}
	if code := run([]string{"profile"}); code != exitUsage {
		t.Fatalf("profile exit %d, want %d", code, exitUsage)
	}
}

// TestProfileCmd emits the two report tables (by kind, by phase).
func TestProfileCmd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.txt")
	if code := run([]string{"profile", "-exp", "fig4.1", "-o", path}); code != exitOK {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "by event kind") || !strings.Contains(text, "by phase") {
		t.Fatalf("profile report incomplete:\n%s", text)
	}
	if !strings.Contains(text, "timer-fire") {
		t.Fatalf("profile report missing timer-fire lane:\n%s", text)
	}
}

// TestBenchCmd writes a bench artifact with a row per benchmark — each
// experiment, the two boot rows (cold vs pool fork), and a checkpointed
// campaign row plus an in-memory micro campaign row per pool width — each
// with a positive event count and rate, and campaign rows carrying width
// and entries/sec.
func TestBenchCmd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_PR10.json")
	if code := run([]string{"bench", "-o", path}); code != exitOK {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file benchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	widths := benchWidths()
	want := len(benchIDs) + 2 + 2*len(widths) // experiments, boot rows, campaign + micro per width
	if len(file.Benchmarks) != want {
		t.Fatalf("want %d benchmark rows, got %d", want, len(file.Benchmarks))
	}
	names := map[string]bool{}
	events := map[string][]int64{}
	for _, row := range file.Benchmarks {
		names[row.Name] = true
		if row.SimEvents <= 0 || row.NSPerEvent <= 0 || row.EventsPerSec <= 0 {
			t.Fatalf("degenerate benchmark row: %+v", row)
		}
		if row.Workers > 0 {
			if row.EntriesPerSec <= 0 {
				t.Fatalf("campaign row without entries/sec: %+v", row)
			}
			plan := strings.TrimSuffix(row.Name, fmt.Sprintf("-p%d", row.Workers))
			events[plan] = append(events[plan], row.SimEvents)
		}
	}
	for _, name := range []string{"fig4.1", "boot-fresh", "boot-fork", "campaign-p1", "pool-micro-p1"} {
		if !names[name] {
			t.Fatalf("missing benchmark row %s: %v", name, names)
		}
	}
	// Sim-event counts are a property of the plan, not the pool width.
	for plan, ev := range events {
		for _, e := range ev {
			if e != ev[0] {
				t.Fatalf("%s event counts differ across widths: %v", plan, ev)
			}
		}
	}
}
