// Command cplab regenerates the paper's tables and figures from the
// simulation.
//
// Usage:
//
//	cplab list                     # show the experiment registry
//	cplab run <id> [flags]         # regenerate one artifact (e.g. fig4.3b)
//	cplab all [flags]              # regenerate everything, in paper order
//	cplab campaign [flags]         # checkpointed sweep (resumes if manifest exists)
//	cplab resume [flags]           # continue an interrupted campaign
//	cplab matrix [flags]           # attack-vs-defense efficacy grid (checkpointed)
//	cplab cluster [flags]          # shard a campaign across cplabd workers
//	cplab fsck [-repair] <path>    # validate (and repair) campaign state on disk
//	cplab trace record <id> [flags]# record the kernel event stream to a .cptrace
//	cplab trace diff <got> <want>  # first-divergence report between two traces
//	cplab timeline [-o P] <logs>   # fold span logs into a Perfetto-loadable trace
//	cplab tail -addr A             # live cluster progress from a /status endpoint
//	cplab metrics -exp <id>        # run instrumented, export telemetry (Prometheus/JSON)
//	cplab profile -exp <id>        # run profiled, report wall cost by event kind/phase
//	cplab bench [-o P]             # time the simulator, write BENCH_PR10.json
//
// Common flags:
//
//	-paper        run at the paper's sample sizes (default: quick shapes)
//	-seed N       deterministic seed (default 1)
//	-json         emit metrics (run/all) or the manifest (campaign) as JSON
//	-faults R     inject faults at per-opportunity rate R in [0,1] (chaos mode)
//	-simbudget D  ambient simulated-time budget per watchdog phase (0 = defaults)
//	-defense P    install countermeasure preset P in every machine ("" = none)
//	-spans P      record a span timeline (JSONL) to P; observation only
//	-spanslices   with -spans, also record per-event scheduler slices
//
// Campaign flags:
//
//	-manifest P   checkpoint file (default campaign.json)
//	-ids CSV      subset of experiment IDs, in order (default: all)
//	-retries N    guarded bumped-seed retries per experiment (default 2)
//	-expwall D    wall-clock budget per experiment (0 = unbounded)
//	-wall D       wall-clock budget for the whole session (halts resumable)
//	-haltafter N  halt (resumable) after N experiments — interruption injection
//	-parallel N   campaign workers; manifest bytes are identical at any width
//	-nopool       boot machines fresh instead of forking pooled templates
//	-force        discard an existing manifest and start over
//	-diskchaos R  inject ENOSPC/EIO into manifest writes at rate R (testing)
//
// Output on stdout is bit-for-bit deterministic for a given seed and flag
// set; wall-clock timings and summaries go to stderr. Exit codes: 0 clean,
// 1 degraded/failed/divergence, 2 usage, 3 halted-but-resumable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/defense"
	"repro/internal/durable"
	"repro/internal/fsfault"
	"repro/internal/report"
	"repro/internal/timebase"
	"repro/internal/trace"
)

// guardedRetries is how many bumped-seed re-runs a crashing experiment gets
// under `run`/`all` before it is reported as failed.
const guardedRetries = 2

// Exit codes.
const (
	exitOK       = 0
	exitDegraded = 1
	exitUsage    = 2
	exitHalted   = 3
)

func main() { os.Exit(run(os.Args[1:])) }

// run dispatches a subcommand and returns the process exit code.
func run(args []string) int {
	if len(args) < 1 {
		usage()
		return exitUsage
	}
	switch args[0] {
	case "list":
		for _, e := range repro.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
		return exitOK
	case "run":
		return runCmd(args[1:])
	case "all":
		return allCmd(args[1:])
	case "campaign":
		return campaignCmd(args[1:], false)
	case "resume":
		return campaignCmd(args[1:], true)
	case "matrix":
		return matrixCmd(args[1:])
	case "cluster":
		return clusterCmd(args[1:])
	case "timeline":
		return timelineCmd(args[1:])
	case "tail":
		return tailCmd(args[1:])
	case "fsck":
		return fsckCmd(args[1:])
	case "metrics":
		return metricsCmd(args[1:])
	case "profile":
		return profileCmd(args[1:])
	case "bench":
		return benchCmd(args[1:])
	case "trace":
		if len(args) < 2 {
			usage()
			return exitUsage
		}
		switch args[1] {
		case "record":
			return traceRecordCmd(args[2:])
		case "diff":
			return traceDiffCmd(args[2:])
		}
		usage()
		return exitUsage
	}
	if s := suggestFrom(args[0], subcommands); s != "" {
		fmt.Fprintf(os.Stderr, "cplab: unknown command %q (did you mean %q?)\n", args[0], s)
	}
	usage()
	return exitUsage
}

// subcommands lists every dispatchable subcommand, for did-you-mean.
var subcommands = []string{
	"list", "run", "all", "campaign", "resume", "matrix", "cluster",
	"timeline", "tail", "fsck", "metrics", "profile", "bench", "trace",
}

// commonFlags are the flags every experiment-running subcommand shares.
type commonFlags struct {
	paper      *bool
	seed       *uint64
	asJSON     *bool
	faults     *float64
	simbudget  *time.Duration
	defense    *string
	spans      *string
	spanslices *bool
}

// addCommon registers the common flags on fs.
func addCommon(fs *flag.FlagSet) *commonFlags {
	return &commonFlags{
		paper:      fs.Bool("paper", false, "run at the paper's sample sizes"),
		seed:       fs.Uint64("seed", 1, "deterministic seed"),
		asJSON:     fs.Bool("json", false, "emit metrics/manifest as JSON instead of rendered figures"),
		faults:     fs.Float64("faults", 0, "fault-injection rate per opportunity in [0,1] (0 disables)"),
		simbudget:  fs.Duration("simbudget", 0, "simulated-time budget per watchdog phase (0 = experiment defaults)"),
		defense:    fs.String("defense", "", "install a countermeasure preset in every machine (see `cplab matrix -help`; \"\" = none)"),
		spans:      fs.String("spans", "", "record a span timeline to this JSONL path (observation only)"),
		spanslices: fs.Bool("spanslices", false, "with -spans: record per-event scheduler slices (verbose)"),
	}
}

// options validates the common flags and folds them into run options.
func (c *commonFlags) options() (repro.Options, error) {
	if *c.faults < 0 || *c.faults > 1 {
		return repro.Options{}, fmt.Errorf("-faults %v is outside [0,1]", *c.faults)
	}
	if *c.simbudget < 0 {
		return repro.Options{}, fmt.Errorf("-simbudget %v is negative", *c.simbudget)
	}
	if *c.defense != "" {
		if _, err := defense.Preset(*c.defense); err != nil {
			return repro.Options{}, fmt.Errorf("-defense: %w", err)
		}
	}
	o := options(*c.paper, *c.seed, *c.faults)
	o.SimBudget = timebase.Duration(*c.simbudget)
	o.Defense = *c.defense
	return o, nil
}

func options(paper bool, seed uint64, faults float64) repro.Options {
	scale := repro.Quick
	if paper {
		scale = repro.Paper
	}
	return repro.Options{Scale: scale, Seed: seed, FaultRate: faults}
}

// runCmd regenerates one artifact.
func runCmd(args []string) int {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(os.Stderr, "cplab run <id> [flags]")
		return exitUsage
	}
	id := args[0]
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cf := addCommon(fs)
	fs.Parse(args[1:])
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	stop, err := cf.startSpans("cplab")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	defer stop()
	if err := runOne(id, o, *cf.asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	return exitOK
}

// allCmd regenerates every artifact.
func allCmd(args []string) int {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	cf := addCommon(fs)
	fs.Parse(args)
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	stop, err := cf.startSpans("cplab")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	defer stop()
	if !runAll(o, *cf.asJSON) {
		return exitDegraded
	}
	return exitOK
}

// runAll regenerates every artifact through the guarded runner: an
// experiment that crashes (possible by design under -faults) is retried
// with a bumped seed and, failing that, reported — the sweep always reaches
// the end. Results go to stdout (deterministic); the per-experiment summary
// goes to stderr. It returns false if any experiment ended degraded or
// failed.
func runAll(o repro.Options, asJSON bool) bool {
	var rows []report.CampaignRow
	ok := true
	for _, e := range repro.Experiments() {
		start := time.Now()
		rep := repro.RunGuarded(e.ID, o, guardedRetries)
		wall := time.Since(start).Round(time.Millisecond)
		fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", e.ID, wall)
		row := report.CampaignRow{ID: rep.ID, Attempts: rep.Attempts, Status: "ok"}
		switch {
		case rep.Result == nil:
			row.Status = "failed"
			row.Cause = firstLine(rep.Err.Error())
			ok = false
		case rep.Degraded:
			row.Status = "degraded"
			ok = false
		}
		rows = append(rows, row)
		if rep.Result == nil {
			fmt.Printf("===== %s — %s =====\n", e.ID, e.Title)
			fmt.Printf("  FAILED after %d attempts: %v\n\n", rep.Attempts, rep.Err)
			continue
		}
		render(e, rep.Result, asJSON)
	}
	fmt.Fprintln(os.Stderr, "===== summary =====")
	fmt.Fprint(os.Stderr, report.CampaignSummary(rows))
	return ok
}

func runOne(id string, o repro.Options, asJSON bool) error {
	e, ok := repro.Lookup(id)
	if !ok {
		if s := suggest(id); s != "" {
			return fmt.Errorf("unknown experiment %q (did you mean %q? try `cplab list`)", id, s)
		}
		return fmt.Errorf("unknown experiment %q (try `cplab list`)", id)
	}
	start := time.Now()
	rep := repro.RunGuarded(id, o, guardedRetries)
	wall := time.Since(start).Round(time.Millisecond)
	fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", e.ID, wall)
	if rep.Result == nil {
		return fmt.Errorf("%s failed after %d attempts: %w", e.ID, rep.Attempts, rep.Err)
	}
	if rep.Attempts > 1 {
		fmt.Fprintf(os.Stderr, "cplab: %s degraded — needed %d attempts\n", e.ID, rep.Attempts)
	}
	render(e, rep.Result, asJSON)
	return nil
}

// campaignCmd runs (or resumes) a checkpointed campaign. With resumeOnly the
// manifest must already exist; otherwise an existing manifest is resumed
// unless -force discards it.
func campaignCmd(args []string, resumeOnly bool) int {
	name := "campaign"
	if resumeOnly {
		name = "resume"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	cf := addCommon(fs)
	manifest := fs.String("manifest", "campaign.json", "checkpoint manifest path")
	idsCSV := fs.String("ids", "", "comma-separated experiment IDs (default: all, in paper order)")
	retries := fs.Int("retries", 2, "guarded bumped-seed retries per experiment")
	expWall := fs.Duration("expwall", 0, "wall-clock budget per experiment (0 = unbounded)")
	wall := fs.Duration("wall", 0, "wall-clock budget for this session; halts resumable (0 = unbounded)")
	haltAfter := fs.Int("haltafter", 0, "halt (resumable) after N experiments this session (0 = off)")
	parallel := fs.Int("parallel", 1, "campaign workers (manifest is byte-identical at any width)")
	nopool := fs.Bool("nopool", false, "boot every machine fresh instead of forking pooled templates (manifest is byte-identical either way)")
	force := fs.Bool("force", false, "discard an existing manifest and start over")
	diskchaos := fs.Float64("diskchaos", 0, "inject ENOSPC/EIO into manifest writes with this probability (testing)")
	diskchaosseed := fs.Uint64("diskchaosseed", 1, "seed for the -diskchaos fault schedule")
	fs.Parse(args)
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	if *retries < 0 {
		fmt.Fprintf(os.Stderr, "cplab: -retries %d is negative\n", *retries)
		return exitUsage
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "cplab: -parallel %d is not positive\n", *parallel)
		return exitUsage
	}
	stop, err := cf.startSpans("cplab")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	defer stop()

	var ids []string
	if *idsCSV != "" {
		for _, id := range strings.Split(*idsCSV, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	o.NoMachinePool = *nopool
	entries := repro.CampaignEntries(ids, o, *retries)
	// The note pins everything but the seed that shapes results, so a
	// resume under different flags is refused instead of silently merging
	// incomparable records. -defense is appended only when set, keeping
	// pre-defense manifests resumable byte-identically.
	note := fmt.Sprintf("paper=%t faults=%g simbudget=%s retries=%d", *cf.paper, *cf.faults, o.SimBudget, *retries)
	if o.Defense != "" {
		note += " defense=" + o.Defense
	}
	cfg := campaign.Config{
		Path:      *manifest,
		Seed:      *cf.seed,
		Note:      note,
		ExpWall:   *expWall,
		HaltAfter: *haltAfter,
		Log:       os.Stderr,
	}
	if *wall > 0 {
		cfg.Deadline = time.Now().Add(*wall)
	}
	if *diskchaos > 0 {
		inj, ierr := fsfault.New(fsfault.Config{Seed: *diskchaosseed, ErrRate: *diskchaos})
		if ierr != nil {
			fmt.Fprintln(os.Stderr, "cplab:", ierr)
			return exitUsage
		}
		cfg.FS = inj
		fmt.Fprintf(os.Stderr, "cplab: disk chaos enabled (rate %g, seed %d)\n", *diskchaos, *diskchaosseed)
	}

	// A store whose manifest was destroyed but whose journal or banked
	// generation survives is resumable — recovery rebuilds it.
	exists := false
	for _, p := range []string{*manifest, campaign.WALPath(*manifest), *manifest + durable.PrevSuffix} {
		if _, statErr := os.Stat(p); statErr == nil {
			exists = true
			break
		}
	}
	var c *campaign.Campaign
	switch {
	case resumeOnly:
		if !exists {
			fmt.Fprintf(os.Stderr, "cplab: nothing to resume — no manifest at %s\n", *manifest)
			return exitDegraded
		}
		c, err = campaign.Resume(cfg, entries)
	case exists && !*force:
		fmt.Fprintf(os.Stderr, "cplab: manifest %s exists — resuming (use -force to start over)\n", *manifest)
		c, err = campaign.Resume(cfg, entries)
	default:
		c, err = campaign.New(cfg, entries)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}

	// Parallelism is a session property, not a plan property: it is absent
	// from the note, and any width yields the same manifest bytes.
	man, runErr := c.RunParallel(context.Background(), *parallel)
	fmt.Fprintln(os.Stderr, "===== campaign summary =====")
	fmt.Fprint(os.Stderr, report.CampaignSummary(man.Rows()))
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "cplab:", runErr)
		if errors.Is(runErr, campaign.ErrHalted) {
			return exitHalted
		}
		return exitDegraded
	}

	// The plan is complete: assemble stdout from the manifest in plan order,
	// so a resumed campaign prints byte-for-byte what an uninterrupted one
	// would have.
	if *cf.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(man); err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			return exitDegraded
		}
	} else {
		printManifestResults(man)
	}
	if !man.Clean() {
		return exitDegraded
	}
	return exitOK
}

// printManifestResults renders every checkpointed result in plan order, in
// the same layout `cplab run` uses.
func printManifestResults(man *campaign.Manifest) {
	for _, id := range man.IDs {
		rec := man.Entries[id]
		title := id
		if e, ok := repro.Lookup(id); ok {
			title = e.Title
		}
		fmt.Printf("===== %s — %s =====\n", id, title)
		if rec == nil {
			fmt.Printf("  PENDING (never ran)\n\n")
			continue
		}
		switch rec.Status {
		case campaign.StatusFailed:
			fmt.Printf("  FAILED after %d attempts: %s\n\n", rec.Attempts, rec.Failure.Msg)
		case campaign.StatusSkipped:
			fmt.Printf("  SKIPPED: %s\n\n", rec.Failure.Msg)
		default:
			fmt.Println(rec.Rendered)
			names := make([]string, 0, len(rec.Metrics))
			for name := range rec.Metrics {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("  metric %-28s %.4f\n", name, rec.Metrics[name])
			}
			fmt.Println()
		}
	}
}

// traceRecordCmd records one experiment's kernel event stream.
func traceRecordCmd(args []string) int {
	if len(args) < 1 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(os.Stderr, "cplab trace record <id> [-o path] [-maxevents N] [flags]")
		return exitUsage
	}
	id := args[0]
	fs := flag.NewFlagSet("trace record", flag.ExitOnError)
	cf := addCommon(fs)
	out := fs.String("o", "", "output path (default <id>.cptrace)")
	maxEvents := fs.Int("maxevents", 0, "per-machine event cap, marks the trace truncated (0 = unbounded)")
	fs.Parse(args[1:])
	o, err := cf.options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	stop, err := cf.startSpans("cplab")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitUsage
	}
	defer stop()
	_, tr, err := repro.RunTraced(id, o, *maxEvents)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	path := *out
	if path == "" {
		path = id + ".cptrace"
	}
	if err := tr.WriteFile(path); err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: wrote %s (%d events, %d result lines)\n", path, len(tr.Events), len(tr.Result))
	return exitOK
}

// traceDiffCmd prints the first divergence between two recorded traces.
func traceDiffCmd(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "cplab trace diff <got.cptrace> <want.cptrace>")
		return exitUsage
	}
	got, err := trace.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	want, err := trace.ReadFile(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplab:", err)
		return exitDegraded
	}
	if d := trace.Diff(got, want); d != nil {
		fmt.Print(d.String())
		return exitDegraded
	}
	fmt.Fprintf(os.Stderr, "cplab: traces match (%d events, %d result lines)\n", len(want.Events), len(want.Result))
	return exitOK
}

// render writes one experiment's result to stdout.
func render(e repro.Experiment, res repro.Result, asJSON bool) {
	if asJSON {
		out := map[string]any{
			"id":      e.ID,
			"title":   e.Title,
			"metrics": e.Metrics(res),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
		}
		return
	}
	fmt.Printf("===== %s — %s =====\n", e.ID, e.Title)
	fmt.Println(res)
	metrics := e.Metrics(res)
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  metric %-28s %.4f\n", name, metrics[name])
	}
	fmt.Println()
}

// firstLine trims a message to its headline.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// suggest returns the runnable ID — registered experiment or matrix cell —
// closest to the given one, if any is close enough to be a plausible typo.
func suggest(id string) string {
	corpus := append(repro.IDs(), repro.MatrixIDs()...)
	return suggestFrom(id, corpus)
}

// suggestFrom returns the candidate closest to word, if any is close enough
// to be a plausible typo.
func suggestFrom(word string, candidates []string) string {
	best, bestD := "", 4
	for _, known := range candidates {
		if d := editDistance(word, known); d < bestD {
			best, bestD = known, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = min(prev[j]+1, min(curr[j-1]+1, prev[j-1]+cost))
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func usage() {
	fmt.Fprintln(os.Stderr, `cplab — Controlled Preemption reproduction lab
usage:
  cplab list
  cplab run <id> [-paper] [-seed N] [-json] [-faults R] [-simbudget D]
  cplab all [flags]
  cplab campaign [flags] [-manifest P] [-ids CSV] [-retries N] [-expwall D] [-wall D] [-haltafter N] [-parallel N] [-nopool] [-force]
  cplab resume [same flags — continues the manifest]
  cplab matrix [-attacks CSV] [-defenses CSV] [-manifest P] [-retries N] [-wall D] [-haltafter N] [-parallel N] [-force] [flags]
  cplab cluster -workers URLS [flags] [-shard N] [-parallel N] [-hang D] [-steal D] [-chaosnet R] [-metricsaddr A] [-force]
  cplab fsck [-repair] <manifest|dir>...
  cplab trace record <id> [-o path] [-maxevents N] [flags]
  cplab trace diff <got.cptrace> <want.cptrace>
  cplab timeline [-o trace.json] <spans.jsonl> [more.jsonl...]
  cplab tail -addr HOST:PORT [-interval D] [-n N]
  cplab metrics -exp <id> [-json] [-o path] [flags]
  cplab profile -exp <id> [-json] [-o path] [flags]
  cplab bench [-o path] [-paper] [-seed N]
exit codes: 0 clean, 1 degraded/failed/divergence, 2 usage, 3 halted-but-resumable`)
}
