// Command cplab regenerates the paper's tables and figures from the
// simulation.
//
// Usage:
//
//	cplab list                 # show the experiment registry
//	cplab run <id> [flags]     # regenerate one artifact (e.g. fig4.3b)
//	cplab all [flags]          # regenerate everything, in paper order
//
// Flags:
//
//	-paper    run at the paper's sample sizes (default: quick shapes)
//	-seed N   deterministic seed (default 1)
//	-json     emit headline metrics as JSON instead of rendered figures
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	paper := fs.Bool("paper", false, "run at the paper's sample sizes")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	asJSON := fs.Bool("json", false, "emit metrics as JSON instead of the rendered figure")

	switch cmd {
	case "list":
		for _, e := range repro.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
	case "run":
		if len(os.Args) < 3 {
			fmt.Fprintln(os.Stderr, "cplab run <id> [flags]")
			os.Exit(2)
		}
		id := os.Args[2]
		if err := fs.Parse(os.Args[3:]); err != nil {
			os.Exit(2)
		}
		if err := runOne(id, options(*paper, *seed), *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			os.Exit(1)
		}
	case "all":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		for _, e := range repro.Experiments() {
			if err := runOne(e.ID, options(*paper, *seed), *asJSON); err != nil {
				fmt.Fprintln(os.Stderr, "cplab:", err)
				os.Exit(1)
			}
		}
	default:
		usage()
		os.Exit(2)
	}
}

func options(paper bool, seed uint64) repro.Options {
	scale := repro.Quick
	if paper {
		scale = repro.Paper
	}
	return repro.Options{Scale: scale, Seed: seed}
}

func runOne(id string, o repro.Options, asJSON bool) error {
	e, ok := repro.Lookup(id)
	if !ok {
		return fmt.Errorf("unknown experiment %q (try `cplab list`)", id)
	}
	start := time.Now()
	res := e.Run(o)
	wall := time.Since(start).Round(time.Millisecond)
	if asJSON {
		out := map[string]any{
			"id":      e.ID,
			"title":   e.Title,
			"wall_ms": wall.Milliseconds(),
			"metrics": e.Metrics(res),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("===== %s — %s (wall %v) =====\n", e.ID, e.Title, wall)
	fmt.Println(res)
	names := make([]string, 0)
	metrics := e.Metrics(res)
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  metric %-28s %.4f\n", name, metrics[name])
	}
	fmt.Println()
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `cplab — Controlled Preemption reproduction lab
usage:
  cplab list
  cplab run <id> [-paper] [-seed N]
  cplab all [-paper] [-seed N]`)
}
