// Command cplab regenerates the paper's tables and figures from the
// simulation.
//
// Usage:
//
//	cplab list                 # show the experiment registry
//	cplab run <id> [flags]     # regenerate one artifact (e.g. fig4.3b)
//	cplab all [flags]          # regenerate everything, in paper order
//
// Flags:
//
//	-paper     run at the paper's sample sizes (default: quick shapes)
//	-seed N    deterministic seed (default 1)
//	-json      emit headline metrics as JSON instead of rendered figures
//	-faults R  inject faults at per-opportunity rate R (chaos mode)
//
// Output on stdout is bit-for-bit deterministic for a given seed and flag
// set; wall-clock timings go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro"
)

// guardedRetries is how many bumped-seed re-runs a crashing experiment gets
// under `all` before it is reported as failed.
const guardedRetries = 2

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	paper := fs.Bool("paper", false, "run at the paper's sample sizes")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	asJSON := fs.Bool("json", false, "emit metrics as JSON instead of the rendered figure")
	faults := fs.Float64("faults", 0, "fault-injection rate per opportunity (0 disables)")

	switch cmd {
	case "list":
		for _, e := range repro.Experiments() {
			fmt.Printf("  %-14s %s\n", e.ID, e.Title)
		}
	case "run":
		if len(os.Args) < 3 {
			fmt.Fprintln(os.Stderr, "cplab run <id> [flags]")
			os.Exit(2)
		}
		id := os.Args[2]
		if err := fs.Parse(os.Args[3:]); err != nil {
			os.Exit(2)
		}
		if err := runOne(id, options(*paper, *seed, *faults), *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
			os.Exit(1)
		}
	case "all":
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		if !runAll(options(*paper, *seed, *faults), *asJSON) {
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func options(paper bool, seed uint64, faults float64) repro.Options {
	scale := repro.Quick
	if paper {
		scale = repro.Paper
	}
	return repro.Options{Scale: scale, Seed: seed, FaultRate: faults}
}

// runAll regenerates every artifact through the guarded runner: an
// experiment that crashes (possible by design under -faults) is retried
// with a bumped seed and, failing that, reported — the sweep always reaches
// the end. It returns false if any experiment produced no result at all.
func runAll(o repro.Options, asJSON bool) bool {
	var reports []repro.RunReport
	for _, e := range repro.Experiments() {
		start := time.Now()
		rep := repro.RunGuarded(e.ID, o, guardedRetries)
		reports = append(reports, rep)
		wall := time.Since(start).Round(time.Millisecond)
		fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", e.ID, wall)
		if rep.Result == nil {
			fmt.Printf("===== %s — %s =====\n", e.ID, e.Title)
			fmt.Printf("  FAILED after %d attempts: %v\n\n", rep.Attempts, rep.Err)
			continue
		}
		render(e, rep.Result, asJSON)
	}

	ok := true
	retried, degraded := 0, 0
	fmt.Println("===== summary =====")
	for _, rep := range reports {
		status := "ok"
		switch {
		case rep.Result == nil:
			status = "failed"
			ok = false
		case rep.Degraded:
			status = "degraded"
		}
		if rep.Attempts > 1 {
			retried++
		}
		if rep.Degraded {
			degraded++
		}
		fmt.Printf("  %-14s attempts=%d %s\n", rep.ID, rep.Attempts, status)
	}
	fmt.Printf("  %d experiments, %d retried, %d degraded\n", len(reports), retried, degraded)
	return ok
}

func runOne(id string, o repro.Options, asJSON bool) error {
	e, ok := repro.Lookup(id)
	if !ok {
		if s := suggest(id); s != "" {
			return fmt.Errorf("unknown experiment %q (did you mean %q? try `cplab list`)", id, s)
		}
		return fmt.Errorf("unknown experiment %q (try `cplab list`)", id)
	}
	start := time.Now()
	rep := repro.RunGuarded(id, o, guardedRetries)
	wall := time.Since(start).Round(time.Millisecond)
	fmt.Fprintf(os.Stderr, "cplab: %s finished in %v\n", e.ID, wall)
	if rep.Result == nil {
		return fmt.Errorf("%s failed after %d attempts: %w", e.ID, rep.Attempts, rep.Err)
	}
	if rep.Attempts > 1 {
		fmt.Fprintf(os.Stderr, "cplab: %s degraded — needed %d attempts\n", e.ID, rep.Attempts)
	}
	render(e, rep.Result, asJSON)
	return nil
}

// render writes one experiment's result to stdout.
func render(e repro.Experiment, res repro.Result, asJSON bool) {
	if asJSON {
		out := map[string]any{
			"id":      e.ID,
			"title":   e.Title,
			"metrics": e.Metrics(res),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "cplab:", err)
		}
		return
	}
	fmt.Printf("===== %s — %s =====\n", e.ID, e.Title)
	fmt.Println(res)
	metrics := e.Metrics(res)
	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  metric %-28s %.4f\n", name, metrics[name])
	}
	fmt.Println()
}

// suggest returns the registered ID closest to the given one, if any is
// close enough to be a plausible typo.
func suggest(id string) string {
	best, bestD := "", 4
	for _, known := range repro.IDs() {
		if d := editDistance(id, known); d < bestD {
			best, bestD = known, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	curr := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			curr[j] = min(prev[j]+1, min(curr[j-1]+1, prev[j-1]+cost))
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func usage() {
	fmt.Fprintln(os.Stderr, `cplab — Controlled Preemption reproduction lab
usage:
  cplab list
  cplab run <id> [-paper] [-seed N] [-faults R]
  cplab all [-paper] [-seed N] [-faults R]`)
}
