// Command cplabd is the lab job daemon: the cplab campaign engine behind
// an HTTP/JSON API. Clients POST campaign specs to /jobs, poll job state,
// fetch checkpointed manifests, and scrape /metrics; SIGTERM drains the
// service, checkpointing any in-flight campaign so the next cplabd (or a
// plain `cplab resume`) picks it up where it stopped.
//
//	cplabd -addr :8642 -state /var/lib/cplab
//	curl -s localhost:8642/jobs -d '{"ids":["fig4.1"],"seed":7,"parallel":4}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/durable"
	"repro/internal/fsfault"
	"repro/internal/labd"
	"repro/internal/obs"
	"repro/internal/timebase"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("cplabd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8642", "listen address")
	state := fs.String("state", "cplabd-state", "state directory (job records + campaign manifests)")
	expwall := fs.Duration("expwall", 0, "wall-clock budget per campaign entry (0 = unbounded)")
	queueLimit := fs.Int("queue", 64, "maximum queued jobs before submissions are refused")
	drainWait := fs.Duration("drain", 30*time.Second, "shutdown budget for checkpointing in-flight work")
	diskchaos := fs.Float64("diskchaos", 0, "inject ENOSPC/EIO into state-dir writes with this probability (testing)")
	diskchaosseed := fs.Uint64("diskchaosseed", 1, "seed for the -diskchaos fault schedule")
	spans := fs.String("spans", "", "append job span timelines to this JSONL path (observation only)")
	spanslices := fs.Bool("spanslices", false, "with -spans: record per-event scheduler slices (verbose)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the service mux")
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "cplabd: unexpected arguments:", fs.Args())
		return 2
	}
	var stateFS durable.FS
	if *diskchaos > 0 {
		inj, err := fsfault.New(fsfault.Config{Seed: *diskchaosseed, ErrRate: *diskchaos})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cplabd:", err)
			return 2
		}
		stateFS = inj
		fmt.Fprintf(os.Stderr, "cplabd: disk chaos enabled (rate %g, seed %d)\n", *diskchaos, *diskchaosseed)
	}

	srv, err := labd.NewServer(labd.Config{
		StateDir: *state,
		FS:       stateFS,
		Entries: func(sp labd.Spec) []campaign.Entry {
			return repro.CampaignEntries(sp.IDs, optionsOf(sp), sp.Retries)
		},
		ValidateSpec: validate,
		Normalize:    normalize,
		Note:         note,
		QueueLimit:   *queueLimit,
		ExpWall:      *expwall,
		Log:          os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplabd:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cplabd:", err)
		return 1
	}

	// Span tracing: the daemon appends (never truncates) so restarted
	// workers extend the same log, and each job span adopts the trace the
	// coordinator propagated over HTTP. The process name carries the
	// listen address so multi-worker timelines get distinct tracks.
	if *spans != "" {
		tr, terr := obs.New(obs.Config{
			Proc:  "cplabd " + ln.Addr().String(),
			Trace: "cplabd",
			Path:  *spans,
		})
		if terr != nil {
			fmt.Fprintln(os.Stderr, "cplabd:", terr)
			return 2
		}
		obs.SetAmbient(&obs.Ctx{Tracer: tr, Slices: *spanslices})
		defer func() {
			obs.SetAmbient(nil)
			if cerr := tr.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "cplabd: spans:", cerr)
				return
			}
			fmt.Fprintf(os.Stderr, "cplabd: spans: wrote %d spans to %s\n", tr.Spans(), *spans)
		}()
	}

	srv.Start()
	fmt.Fprintf(os.Stderr, "cplabd: listening on %s (state %s)\n", ln.Addr(), *state)

	// The service handler, optionally wrapped with pprof on an explicit
	// mux — never the DefaultServeMux, which third-party imports can
	// pollute.
	var handler http.Handler = srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		fmt.Fprintf(os.Stderr, "cplabd: pprof on http://%s/debug/pprof/\n", ln.Addr())
	}

	// The hardened server: header/read/idle timeouts against slow clients.
	hs := labd.NewHTTPServer(handler)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "cplabd: draining (checkpointing in-flight jobs)")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "cplabd:", err)
		return 1
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "cplabd: drain:", err)
		hs.Close()
		return 1
	}
	hs.Close()
	fmt.Fprintln(os.Stderr, "cplabd: drained; unfinished jobs resume on restart")
	return 0
}

// optionsOf maps a job spec onto experiment run options the same way the
// cplab CLI maps its flags, so daemon jobs and CLI campaigns with matching
// configuration produce byte-identical manifests.
func optionsOf(sp labd.Spec) repro.Options {
	scale := repro.Quick
	if sp.Paper {
		scale = repro.Paper
	}
	return repro.Options{
		Scale:     scale,
		Seed:      sp.Seed,
		FaultRate: sp.Faults,
		SimBudget: timebase.Duration(sp.SimBudget),
	}
}

// normalize canonicalizes a spec before validation and persistence: seed 0
// becomes 1, the CLI default.
func normalize(sp labd.Spec) labd.Spec {
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	return sp
}

// validate vets a spec at submission, mirroring the CLI's flag checks.
func validate(sp labd.Spec) error {
	for _, id := range sp.IDs {
		if _, ok := repro.Lookup(id); !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
	}
	if sp.Faults < 0 || sp.Faults > 1 {
		return fmt.Errorf("faults %g is outside [0,1]", sp.Faults)
	}
	if sp.SimBudget < 0 {
		return fmt.Errorf("simbudget %s is negative", sp.SimBudget)
	}
	if sp.Retries < 0 {
		return fmt.Errorf("retries %d is negative", sp.Retries)
	}
	if sp.Parallel < 0 {
		return fmt.Errorf("parallel %d is negative", sp.Parallel)
	}
	return nil
}

// note pins the spec's non-seed configuration in the manifest, in exactly
// the format `cplab campaign` writes, so either tool can resume the
// other's checkpoints. Parallelism is deliberately absent: it does not
// shape results.
func note(sp labd.Spec) string {
	return fmt.Sprintf("paper=%t faults=%g simbudget=%s retries=%d",
		sp.Paper, sp.Faults, timebase.Duration(sp.SimBudget), sp.Retries)
}
