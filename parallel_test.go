package repro

// Integration gate for the parallel campaign engine over real experiments:
// a campaign run with 8 workers must checkpoint byte-for-byte what the
// serial run checkpoints — same records, same per-entry telemetry, same
// seeds — and a campaign halted mid-flight under parallelism must resume
// into the identical manifest. The experiment set matches the golden-trace
// gate: a CFS machine run (fig4.1), a multi-machine noisy run (fig4.6) and
// a machine-less pure computation (tab2.1).

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
)

var parallelIDs = []string{"fig4.1", "fig4.6", "tab2.1"}

// runCampaign runs a fresh campaign over parallelIDs at the given width
// and returns the manifest bytes.
func runCampaign(t *testing.T, workers int) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.json")
	c, err := campaign.New(campaign.Config{Path: path, Seed: 1, Note: "parallel-gate"},
		CampaignEntries(parallelIDs, Options{Scale: Quick, Seed: 1}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunParallel(context.Background(), workers); err != nil {
		t.Fatalf("campaign (workers=%d): %v", workers, err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParallelCampaignMatchesSerial(t *testing.T) {
	serial := runCampaign(t, 1)
	parallel := runCampaign(t, 8)
	if string(serial) != string(parallel) {
		t.Fatalf("parallel manifest differs from serial:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestParallelAggressiveSettingsMatchSerialDefaults runs a width-2 campaign
// at the bench path's relaxed invariant stride and requires its manifest to
// match the width-1, default-stride manifest byte for byte. This pins down
// the whole aggressive configuration at once: pooled events, amortized
// invariant scans and parallel execution may change how fast entries run,
// never what they record.
func TestParallelAggressiveSettingsMatchSerialDefaults(t *testing.T) {
	serial := runCampaign(t, 1)

	path := filepath.Join(t.TempDir(), "campaign.json")
	c, err := campaign.New(campaign.Config{Path: path, Seed: 1, Note: "parallel-gate"},
		CampaignEntries(parallelIDs, Options{Scale: Quick, Seed: 1, InvariantStride: 65536}, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunParallel(context.Background(), 2); err != nil {
		t.Fatalf("aggressive campaign: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(serial) {
		t.Fatalf("aggressive-settings manifest differs from serial defaults:\ngot:\n%s\nwant:\n%s", got, serial)
	}
}

func TestParallelHaltedCampaignResumesToSerialBytes(t *testing.T) {
	serial := runCampaign(t, 1)

	path := filepath.Join(t.TempDir(), "campaign.json")
	entries := CampaignEntries(parallelIDs, Options{Scale: Quick, Seed: 1}, 0)
	cfg := campaign.Config{Path: path, Seed: 1, Note: "parallel-gate"}
	halted := cfg
	halted.HaltAfter = 1
	c, err := campaign.New(halted, entries)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunParallel(context.Background(), 8); err != campaign.ErrHalted {
		t.Fatalf("halted session: err %v, want ErrHalted", err)
	}
	mid, err := campaign.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Complete() {
		t.Fatal("campaign completed despite HaltAfter=1")
	}

	r, err := campaign.Resume(cfg, entries)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunParallel(context.Background(), 8); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(serial) {
		t.Fatalf("resumed parallel manifest differs from uninterrupted serial:\ngot:\n%s\nwant:\n%s", got, serial)
	}
}
