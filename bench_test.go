package repro

// The benchmark harness: one benchmark per paper table/figure. Each run
// regenerates the artifact (Quick scale by default so `go test -bench=.`
// finishes in minutes; set -paperscale for the paper's sample sizes),
// prints the rendered figure once, and reports the headline metrics so
// bench output doubles as the paper-vs-measured record.

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
)

var paperScale = flag.Bool("paperscale", false, "run benchmarks at the paper's sample sizes")

func benchScale() Scale {
	if *paperScale {
		return Paper
	}
	return Quick
}

// benchExperiment runs one registered experiment under the benchmark
// harness, reporting its metrics plus the simulator's event throughput
// (counted through a telemetry registry, which cannot perturb the run).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	reg := metrics.New()
	prev := metrics.SetAmbient(reg)
	defer metrics.SetAmbient(prev)
	var res Result
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res = e.Run(Options{Scale: benchScale(), Seed: 1})
	}
	wall := time.Since(start)
	if ev := reg.Total("kern_events_total"); ev > 0 && wall > 0 {
		b.ReportMetric(float64(wall.Nanoseconds())/float64(ev), "ns/sim-event")
		b.ReportMetric(float64(ev)/wall.Seconds(), "sim-events/sec")
	}
	for name, v := range e.Metrics(res) {
		b.ReportMetric(v, name)
	}
	if b.N == 1 {
		fmt.Printf("\n===== %s — %s =====\n%s\n", e.ID, e.Title, res)
	}
}

func BenchmarkTable21(b *testing.B)        { benchExperiment(b, "tab2.1") }
func BenchmarkFigure11(b *testing.B)       { benchExperiment(b, "fig1.1") }
func BenchmarkFigure41(b *testing.B)       { benchExperiment(b, "fig4.1") }
func BenchmarkFigure43a(b *testing.B)      { benchExperiment(b, "fig4.3a") }
func BenchmarkFigure43b(b *testing.B)      { benchExperiment(b, "fig4.3b") }
func BenchmarkFigure43c(b *testing.B)      { benchExperiment(b, "fig4.3c") }
func BenchmarkFigure44(b *testing.B)       { benchExperiment(b, "fig4.4") }
func BenchmarkFigure45(b *testing.B)       { benchExperiment(b, "fig4.5") }
func BenchmarkFigure46(b *testing.B)       { benchExperiment(b, "fig4.6") }
func BenchmarkFigure47(b *testing.B)       { benchExperiment(b, "fig4.7") }
func BenchmarkSection45EEVDF(b *testing.B) { benchExperiment(b, "sec4.5") }
func BenchmarkColocation(b *testing.B)     { benchExperiment(b, "sec4.4") }
func BenchmarkFigure51(b *testing.B)       { benchExperiment(b, "fig5.1") }
func BenchmarkFigure51EEVDF(b *testing.B)  { benchExperiment(b, "fig5.1e") }
func BenchmarkFigure52(b *testing.B)       { benchExperiment(b, "fig5.2") }
func BenchmarkFigure54(b *testing.B)       { benchExperiment(b, "fig5.4") }

func BenchmarkExtensionNoise(b *testing.B) { benchExperiment(b, "ext.noise") }
func BenchmarkExtensionEEVDF(b *testing.B) { benchExperiment(b, "ext.eevdf") }

func BenchmarkAblationMitigation(b *testing.B)     { benchExperiment(b, "abl.mitigation") }
func BenchmarkAblationGentleSleepers(b *testing.B) { benchExperiment(b, "abl.gentle") }
func BenchmarkAblationTimerSlack(b *testing.B)     { benchExperiment(b, "abl.slack") }
func BenchmarkAblationRoundRobin(b *testing.B)     { benchExperiment(b, "abl.roundrobin") }

func BenchmarkChaos(b *testing.B) { benchExperiment(b, "chaos") }

// TestRegistryComplete pins the experiment inventory to DESIGN.md's index.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tab2.1", "fig1.1", "fig4.1", "fig4.3a", "fig4.3b", "fig4.3c",
		"fig4.4", "fig4.5", "fig4.6", "fig4.7", "sec4.5", "sec4.4",
		"fig5.1", "fig5.1e", "fig5.2", "fig5.4",
		"ext.noise", "ext.eevdf",
		"abl.mitigation", "abl.gentle", "abl.slack", "abl.roundrobin",
		"chaos",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, index lists %d", len(Experiments()), len(want))
	}
}

// TestRunUnknown checks the error path.
func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig9.9", Options{}); err == nil {
		t.Fatal("want error for unknown id")
	}
}

// TestQuickRunAll smoke-runs the cheap experiments through the public API.
func TestQuickRunAll(t *testing.T) {
	for _, id := range []string{"tab2.1", "fig4.1"} {
		res, err := Run(id, Options{Scale: Quick, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.String() == "" {
			t.Errorf("%s rendered empty", id)
		}
	}
}

// TestRunAllQuickScale executes every registered experiment at quick scale
// (the same run `cplab all` does), verifying each renders and reports
// metrics. Skipped under -short: it regenerates the whole artifact suite.
func TestRunAllQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact suite")
	}
	for _, e := range Experiments() {
		res := e.Run(Options{Scale: Quick, Seed: 1})
		if res.String() == "" {
			t.Errorf("%s rendered empty", e.ID)
		}
		m := e.Metrics(res)
		if len(m) == 0 {
			t.Errorf("%s reported no metrics", e.ID)
		}
		for name, v := range m {
			if v != v { // NaN
				t.Errorf("%s metric %s is NaN", e.ID, name)
			}
		}
	}
}

// TestDeterminism: same seed, same result rendering.
func TestDeterminism(t *testing.T) {
	a, err := Run("fig4.1", Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Run("fig4.1", Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b2.String() {
		t.Fatal("same seed produced different results")
	}
	c, err := Run("fig4.1", Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical vruntime walks")
	}
}
