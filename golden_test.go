package repro

// Golden-trace regression gate: for a few representative experiments the
// full kernel event stream (capped per machine, plus the rendered result)
// is committed under testdata/golden/. Any change to the scheduler, the
// event loop or the experiment drivers that shifts even one scheduling
// decision fails these tests with a first-divergence report naming the
// event and the reconstructed machine state. Refresh the files with
//
//	go test -run TestGoldenTraces -update
//
// after verifying the behaviour change is intended.

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files")

// goldenEventCap bounds each machine's recorded events, keeping the
// committed files reviewable; Diff still compares the full rendered result.
const goldenEventCap = 2500

// goldenSeed pins the recording seed; goldenIDs picks a CFS machine run
// (fig4.1), a multi-machine noisy run (fig4.6) and a machine-less pure
// computation (tab2.1).
const goldenSeed = 1

var goldenIDs = []string{"fig4.1", "fig4.6", "tab2.1"}

func TestGoldenTraces(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", id+".cptrace")
			_, got, err := RunTraced(id, Options{Scale: Quick, Seed: goldenSeed}, goldenEventCap)
			if err != nil {
				t.Fatalf("RunTraced(%s): %v", id, err)
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := got.WriteFile(path); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d events, %d result lines)", path, len(got.Events), len(got.Result))
				return
			}
			want, err := trace.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if d := trace.Diff(got, want); d != nil {
				t.Fatalf("schedule diverged from golden %s:\n%s", path, d)
			}
		})
	}
}

// TestGoldenTracesAggressiveSettings re-runs the golden gate at the
// settings the bench and campaign paths use for speed — a heavily relaxed
// invariant-scan stride over the pooled event engine — and requires the
// exact same traces. Invariant scans are pure checking and event pooling
// only recycles storage, so if either ever shifts a single scheduling
// decision, this fails with the same first-divergence report as the
// default-settings gate.
func TestGoldenTracesAggressiveSettings(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are recorded at default settings")
	}
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", id+".cptrace")
			_, got, err := RunTraced(id, Options{Scale: Quick, Seed: goldenSeed, InvariantStride: 65536}, goldenEventCap)
			if err != nil {
				t.Fatalf("RunTraced(%s): %v", id, err)
			}
			want, err := trace.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if d := trace.Diff(got, want); d != nil {
				t.Fatalf("relaxed invariant stride changed the schedule vs golden %s:\n%s", path, d)
			}
		})
	}
}
